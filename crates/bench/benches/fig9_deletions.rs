//! Figure 9: incremental deletion scalability, for both datasets and both
//! update sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use orchestra_bench::build_loaded;
use orchestra_datalog::EngineKind;
use orchestra_workload::DatasetKind;

fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_deletions");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));

    for dataset in [DatasetKind::Integers, DatasetKind::Strings] {
        let base = match dataset {
            DatasetKind::Integers => 80,
            DatasetKind::Strings => 30,
        };
        for peers in [2usize, 5] {
            for pct in [0.01f64, 0.1] {
                group.bench_with_input(
                    BenchmarkId::new(format!("{}-{}%", dataset.label(), pct * 100.0), peers),
                    &peers,
                    |b, &peers| {
                        b.iter_batched(
                            || {
                                let mut g = build_loaded(
                                    peers,
                                    base,
                                    dataset,
                                    0,
                                    EngineKind::Pipelined,
                                    43,
                                );
                                let batch = g.deletion_batch(g.entries_for_ratio(pct));
                                (g, batch)
                            },
                            |(mut g, batch)| g.cdss.apply_deletions_incremental(&batch).unwrap(),
                            criterion::BatchSize::LargeInput,
                        );
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
