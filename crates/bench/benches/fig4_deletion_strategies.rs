//! Figure 4: deletion strategies — the provenance-guided incremental
//! algorithm vs DRed vs complete recomputation, as the fraction of deleted
//! base data grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use orchestra_bench::build_loaded;
use orchestra_datalog::EngineKind;
use orchestra_workload::DatasetKind;

const BASE: usize = 40;
const PEERS: usize = 5;

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_deletion_strategies");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));

    for ratio in [0.1f64, 0.5, 0.9] {
        for strategy in ["incremental", "dred", "recompute"] {
            group.bench_with_input(
                BenchmarkId::new(strategy, format!("{:.0}%", ratio * 100.0)),
                &(ratio, strategy),
                |b, &(ratio, strategy)| {
                    b.iter_batched(
                        || {
                            let mut g = build_loaded(
                                PEERS,
                                BASE,
                                DatasetKind::Integers,
                                0,
                                EngineKind::Pipelined,
                                11,
                            );
                            let count = g.entries_for_ratio(ratio);
                            let batch = g.deletion_batch(count);
                            (g, batch)
                        },
                        |(mut g, batch)| match strategy {
                            "incremental" => {
                                g.cdss.apply_deletions_incremental(&batch).unwrap();
                            }
                            "dred" => {
                                g.cdss.apply_deletions_dred(&batch).unwrap();
                            }
                            _ => {
                                g.cdss.apply_deletions_incremental(&batch).unwrap();
                                g.cdss.recompute_all().unwrap();
                            }
                        },
                        criterion::BatchSize::LargeInput,
                    );
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
