//! Figure 6: initial computed instance size. The size numbers themselves are
//! reported by the `experiments` binary; this bench times the statistics
//! collection plus the instance computation it measures them on, so the
//! figure's full pipeline is exercised under `cargo bench`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use orchestra_bench::build_loaded;
use orchestra_datalog::EngineKind;
use orchestra_workload::DatasetKind;

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_instance_size");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));

    for peers in [2usize, 5, 10] {
        let g = build_loaded(
            peers,
            80,
            DatasetKind::Integers,
            0,
            EngineKind::Pipelined,
            31,
        );
        group.bench_with_input(BenchmarkId::new("collect_stats", peers), &peers, |b, _| {
            b.iter(|| {
                let stats = g.cdss.instance_stats();
                criterion::black_box((stats.total_tuples, stats.total_bytes))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
