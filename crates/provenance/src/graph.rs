//! The provenance graph (paper §3.2, Definition 3.2 and Example 5).
//!
//! The graph has two kinds of nodes: **tuple nodes** (one per tuple in the
//! system) and **mapping nodes** (one per instantiation of a mapping's tgd).
//! Edges run from the source tuples of an instantiation to its mapping node,
//! and from the mapping node to the tuples it derives. Base tuples (direct
//! user insertions) additionally carry their provenance token.
//!
//! Three queries matter to the CDSS:
//!
//! * generating the provenance *expression* of a tuple by backward traversal
//!   (used for explanation and for trust over finite expressions);
//! * computing the set of tuples **derivable** from valid base tuples — the
//!   goal-directed test at the heart of the incremental deletion algorithm
//!   (Figure 3, line 16);
//! * computing the set of **trusted** tuples under a peer's trust assignment
//!   (§3.3), which is the same least fixpoint with mapping-level conditions.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

use orchestra_storage::{FxBuildHasher, Tuple, TupleId};

use crate::expr::ProvenanceExpr;
use crate::token::{MappingId, ProvenanceToken};

/// A graph-local symbol for a relation name, so stored-tuple node keys are
/// a pair of integers instead of a string and a hashed payload.
type RelSym = u32;

/// Identifier of a tuple node within a [`ProvenanceGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleNodeId(usize);

/// Identifier of a mapping node within a [`ProvenanceGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MappingNodeId(usize);

#[derive(Debug, Clone)]
struct TupleNode {
    relation: String,
    tuple: Tuple,
    base_token: Option<ProvenanceToken>,
    /// Mapping nodes that derive this tuple.
    derived_by: Vec<MappingNodeId>,
    /// Mapping nodes that consume this tuple.
    feeds: Vec<MappingNodeId>,
}

#[derive(Debug, Clone)]
struct MappingNode {
    mapping: MappingId,
    sources: Vec<TupleNodeId>,
    targets: Vec<TupleNodeId>,
}

/// The provenance graph.
///
/// Graph maintenance (rebuilds and incremental extension after insertion
/// propagation) keys **stored** tuples on `(RelId, TupleId)` — the
/// relation's graph-local symbol plus the tuple's slab id in its relation —
/// so the maintenance hot path probes a pair of integers instead of a
/// hashed tuple payload. The value-keyed index remains for by-value
/// queries (`expression_for`, `derivable`) and for tuples registered
/// without a storage id.
///
/// **Id validity:** `TupleId`s are only stable while their tuples stay
/// stored. Any caller that removes tuples must rebuild (or discard) the
/// graph — the CDSS layer's deletion paths already invalidate it.
#[derive(Debug, Clone, Default)]
pub struct ProvenanceGraph {
    tuples: Vec<TupleNode>,
    mappings: Vec<MappingNode>,
    /// Nested index (relation → tuple → node) so the by-value lookups
    /// ([`ProvenanceGraph::tuple_node`], [`ProvenanceGraph::ensure_tuple`])
    /// are allocation-free: the outer map is probed with `&str`, the inner
    /// with `&Tuple`.
    tuple_index: HashMap<String, HashMap<Tuple, TupleNodeId>>,
    /// Graph-local relation symbols backing the stored-tuple fast index.
    rel_syms: HashMap<String, RelSym>,
    /// `(RelId, TupleId)` → node: the maintenance fast path.
    stored: HashMap<(RelSym, TupleId), TupleNodeId, FxBuildHasher>,
    mapping_dedup: HashSet<(MappingId, Vec<TupleNodeId>, Vec<TupleNodeId>)>,
}

impl ProvenanceGraph {
    /// Create an empty graph.
    pub fn new() -> Self {
        ProvenanceGraph::default()
    }

    /// Number of tuple nodes.
    pub fn num_tuple_nodes(&self) -> usize {
        self.tuples.len()
    }

    /// Number of mapping (instantiation) nodes.
    pub fn num_mapping_nodes(&self) -> usize {
        self.mappings.len()
    }

    /// Look up the node for a tuple, if present. Allocation-free.
    pub fn tuple_node(&self, relation: &str, tuple: &Tuple) -> Option<TupleNodeId> {
        self.tuple_index.get(relation)?.get(tuple).copied()
    }

    /// The (relation, tuple) pair of a node.
    pub fn tuple_of(&self, id: TupleNodeId) -> (&str, &Tuple) {
        let n = &self.tuples[id.0];
        (&n.relation, &n.tuple)
    }

    /// Get or create the tuple node for `(relation, tuple)`. Only a cache
    /// miss clones the arguments.
    pub fn ensure_tuple(&mut self, relation: &str, tuple: &Tuple) -> TupleNodeId {
        if let Some(&id) = self.tuple_index.get(relation).and_then(|m| m.get(tuple)) {
            return id;
        }
        let id = TupleNodeId(self.tuples.len());
        self.tuples.push(TupleNode {
            relation: relation.to_string(),
            tuple: tuple.clone(),
            base_token: None,
            derived_by: Vec::new(),
            feeds: Vec::new(),
        });
        self.tuple_index
            .entry(relation.to_string())
            .or_default()
            .insert(tuple.clone(), id);
        id
    }

    /// The graph-local symbol of a relation name.
    fn rel_sym(&mut self, relation: &str) -> RelSym {
        if let Some(&sym) = self.rel_syms.get(relation) {
            return sym;
        }
        let sym = u32::try_from(self.rel_syms.len()).expect("relation symbols fit u32");
        self.rel_syms.insert(relation.to_string(), sym);
        sym
    }

    /// Get or create the node for a **stored** tuple, keyed on
    /// `(RelId, TupleId)`. The fast path of graph maintenance: a hit costs
    /// one integer-pair probe and touches no payload. `tid` must be the
    /// tuple's current slab id in `relation` (see the struct docs for id
    /// validity).
    pub fn ensure_stored_tuple(
        &mut self,
        relation: &str,
        tid: TupleId,
        tuple: &Tuple,
    ) -> TupleNodeId {
        let sym = self.rel_sym(relation);
        if let Some(&id) = self.stored.get(&(sym, tid)) {
            debug_assert_eq!(&self.tuples[id.0].tuple, tuple, "stale stored-tuple id");
            return id;
        }
        let id = self.ensure_tuple(relation, tuple);
        self.stored.insert((sym, tid), id);
        id
    }

    /// Mark a tuple as base data (a local contribution): it is annotated with
    /// its own provenance token.
    pub fn mark_base(&mut self, relation: &str, tuple: &Tuple) -> TupleNodeId {
        let id = self.ensure_tuple(relation, tuple);
        if self.tuples[id.0].base_token.is_none() {
            self.tuples[id.0].base_token = Some(ProvenanceToken::new(relation, tuple.clone()));
        }
        id
    }

    /// [`ProvenanceGraph::mark_base`] through the stored-tuple fast index.
    pub fn mark_base_stored(&mut self, relation: &str, tid: TupleId, tuple: &Tuple) -> TupleNodeId {
        let id = self.ensure_stored_tuple(relation, tid, tuple);
        if self.tuples[id.0].base_token.is_none() {
            self.tuples[id.0].base_token = Some(ProvenanceToken::new(relation, tuple.clone()));
        }
        id
    }

    /// Is this tuple node annotated as base data?
    pub fn is_base(&self, id: TupleNodeId) -> bool {
        self.tuples[id.0].base_token.is_some()
    }

    /// Record one instantiation of a mapping: `sources` are the tuples
    /// matching the tgd's LHS, `targets` the tuples it derives. Duplicate
    /// instantiations are ignored.
    pub fn add_derivation(
        &mut self,
        mapping: impl Into<MappingId>,
        sources: &[(&str, Tuple)],
        targets: &[(&str, Tuple)],
    ) -> Option<MappingNodeId> {
        let source_ids: Vec<TupleNodeId> = sources
            .iter()
            .map(|(r, t)| self.ensure_tuple(r, t))
            .collect();
        let target_ids: Vec<TupleNodeId> = targets
            .iter()
            .map(|(r, t)| self.ensure_tuple(r, t))
            .collect();
        self.add_derivation_nodes(mapping.into(), source_ids, target_ids)
    }

    /// Record one mapping instantiation between already-resolved tuple
    /// nodes (obtained from [`ProvenanceGraph::ensure_tuple`] or
    /// [`ProvenanceGraph::ensure_stored_tuple`]). Duplicate instantiations
    /// are ignored.
    pub fn add_derivation_nodes(
        &mut self,
        mapping: impl Into<MappingId>,
        source_ids: Vec<TupleNodeId>,
        target_ids: Vec<TupleNodeId>,
    ) -> Option<MappingNodeId> {
        let key = (mapping.into(), source_ids, target_ids);
        if self.mapping_dedup.contains(&key) {
            return None;
        }
        let (mapping, source_ids, target_ids) = key.clone();
        self.mapping_dedup.insert(key);

        let id = MappingNodeId(self.mappings.len());
        for s in &source_ids {
            self.tuples[s.0].feeds.push(id);
        }
        for t in &target_ids {
            self.tuples[t.0].derived_by.push(id);
        }
        self.mappings.push(MappingNode {
            mapping,
            sources: source_ids,
            targets: target_ids,
        });
        Some(id)
    }

    /// The mapping name of a mapping node.
    pub fn mapping_of(&self, id: MappingNodeId) -> &str {
        &self.mappings[id.0].mapping
    }

    /// Generate the provenance expression of a tuple by backward traversal.
    ///
    /// For acyclic provenance this is exactly the finite expression of §3.2.
    /// When mappings form cycles the true provenance is an infinite formal
    /// power series (paper §3.2); this function computes the *cycle-free*
    /// derivations by cutting any derivation path that revisits a tuple node,
    /// which preserves evaluation in every idempotent semiring (boolean
    /// trust, lineage, why-provenance) because repeating a loop can never
    /// make an underivable tuple derivable.
    pub fn expression_for(&self, relation: &str, tuple: &Tuple) -> ProvenanceExpr {
        let Some(id) = self.tuple_node(relation, tuple) else {
            return ProvenanceExpr::Zero;
        };
        let mut on_path = HashSet::new();
        self.expression_for_node(id, &mut on_path)
    }

    fn expression_for_node(
        &self,
        id: TupleNodeId,
        on_path: &mut HashSet<TupleNodeId>,
    ) -> ProvenanceExpr {
        if on_path.contains(&id) {
            // Cycle: this branch contributes no *new* derivation.
            return ProvenanceExpr::Zero;
        }
        let node = &self.tuples[id.0];
        let mut summands = Vec::new();
        if let Some(tok) = &node.base_token {
            summands.push(ProvenanceExpr::Token(tok.clone()));
        }
        on_path.insert(id);
        for &m in &node.derived_by {
            let mnode = &self.mappings[m.0];
            let factors: Vec<ProvenanceExpr> = mnode
                .sources
                .iter()
                .map(|&s| self.expression_for_node(s, on_path))
                .collect();
            summands.push(ProvenanceExpr::mapping(
                mnode.mapping.clone(),
                ProvenanceExpr::product(factors),
            ));
        }
        on_path.remove(&id);
        ProvenanceExpr::sum(summands)
    }

    /// The set of tuple nodes derivable from base tuples accepted by
    /// `base_valid` — the least fixpoint of "is a valid base tuple, or is the
    /// target of a mapping node all of whose sources are derivable".
    ///
    /// This is the goal-directed derivability test used by the deletion
    /// propagation algorithm (paper Figure 3, line 16): after removing some
    /// base data, a tuple must be deleted iff it is *not* in this set.
    pub fn derivable_set(
        &self,
        base_valid: impl Fn(&ProvenanceToken) -> bool,
    ) -> HashSet<TupleNodeId> {
        self.least_fixpoint(base_valid, |_, _, _| true)
    }

    /// The set of tuple nodes trusted under a peer's trust assignment
    /// (§3.3): base tuples are trusted according to `trusted_base`; a mapping
    /// instantiation confers trust on a target tuple only if every source is
    /// trusted *and* `mapping_ok(mapping, target_relation, target_tuple)`
    /// holds (the mapping's trust condition evaluated on the derived data).
    pub fn trusted_set(
        &self,
        trusted_base: impl Fn(&ProvenanceToken) -> bool,
        mapping_ok: impl Fn(&str, &str, &Tuple) -> bool,
    ) -> HashSet<TupleNodeId> {
        self.least_fixpoint(trusted_base, mapping_ok)
    }

    fn least_fixpoint(
        &self,
        base_valid: impl Fn(&ProvenanceToken) -> bool,
        mapping_ok: impl Fn(&str, &str, &Tuple) -> bool,
    ) -> HashSet<TupleNodeId> {
        let mut derivable: HashSet<TupleNodeId> = HashSet::new();
        let mut queue: VecDeque<TupleNodeId> = VecDeque::new();

        for (i, node) in self.tuples.iter().enumerate() {
            if let Some(tok) = &node.base_token {
                if base_valid(tok) {
                    let id = TupleNodeId(i);
                    if derivable.insert(id) {
                        queue.push_back(id);
                    }
                }
            }
        }

        // Count, per mapping node, how many of its sources are not yet known
        // to be derivable; when the count reaches zero the node fires. The
        // counter is decremented exactly once per source, when that source is
        // popped from the work queue (every derivable node enters the queue
        // exactly once).
        let mut missing: Vec<usize> = self.mappings.iter().map(|m| m.sources.len()).collect();
        // Zero-source mapping nodes (no join inputs) fire immediately.
        let mut ready: VecDeque<usize> = missing
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == 0)
            .map(|(i, _)| i)
            .collect();

        loop {
            while let Some(mi) = ready.pop_front() {
                let m = &self.mappings[mi];
                for &t in &m.targets {
                    let (rel, tup) = self.tuple_of(t);
                    if mapping_ok(&m.mapping, rel, tup) && derivable.insert(t) {
                        queue.push_back(t);
                    }
                }
            }
            let Some(next) = queue.pop_front() else {
                break;
            };
            for &mi in &self.tuples[next.0].feeds {
                let idx = mi.0;
                missing[idx] -= 1;
                if missing[idx] == 0 {
                    ready.push_back(idx);
                }
            }
        }
        derivable
    }

    /// Is the given tuple derivable from base tuples accepted by
    /// `base_valid`?
    pub fn derivable(
        &self,
        relation: &str,
        tuple: &Tuple,
        base_valid: impl Fn(&ProvenanceToken) -> bool,
    ) -> bool {
        match self.tuple_node(relation, tuple) {
            None => false,
            Some(id) => self.derivable_set(base_valid).contains(&id),
        }
    }

    /// Is the given tuple trusted under the given assignment?
    pub fn trusted(
        &self,
        relation: &str,
        tuple: &Tuple,
        trusted_base: impl Fn(&ProvenanceToken) -> bool,
        mapping_ok: impl Fn(&str, &str, &Tuple) -> bool,
    ) -> bool {
        match self.tuple_node(relation, tuple) {
            None => false,
            Some(id) => self.trusted_set(trusted_base, mapping_ok).contains(&id),
        }
    }

    /// Iterate over all tuple nodes as `(relation, tuple, is_base)`.
    pub fn tuple_nodes(&self) -> impl Iterator<Item = (&str, &Tuple, bool)> {
        self.tuples
            .iter()
            .map(|n| (n.relation.as_str(), &n.tuple, n.base_token.is_some()))
    }

    /// Iterate over all tuple nodes with their node ids, so callers
    /// post-processing a fixpoint set need no by-value re-lookup.
    pub fn tuple_nodes_with_ids(&self) -> impl Iterator<Item = (TupleNodeId, &str, &Tuple)> {
        self.tuples
            .iter()
            .enumerate()
            .map(|(i, n)| (TupleNodeId(i), n.relation.as_str(), &n.tuple))
    }

    /// The one-hop derivation neighbors of `(relation, tuple)` in one
    /// direction, deduplicated and sorted by `(mapping, relation, tuple)`.
    ///
    /// This deterministic enumeration is what the paginated provenance
    /// cursor walks: unlike [`ProvenanceGraph::expression_for`], whose
    /// rendered expression can explode combinatorially, the neighbor list
    /// is linear in the tuple's direct derivations and can be sliced into
    /// stable pages by offset. Unknown tuples have no neighbors.
    pub fn neighbors(
        &self,
        relation: &str,
        tuple: &Tuple,
        direction: PageDirection,
    ) -> Vec<ProvenanceNeighbor> {
        let Some(id) = self.tuple_node(relation, tuple) else {
            return Vec::new();
        };
        let node = &self.tuples[id.0];
        let via = match direction {
            PageDirection::Sources => &node.derived_by,
            PageDirection::Targets => &node.feeds,
        };
        let mut out: Vec<ProvenanceNeighbor> = Vec::new();
        for &mi in via {
            let m = &self.mappings[mi.0];
            let side = match direction {
                PageDirection::Sources => &m.sources,
                PageDirection::Targets => &m.targets,
            };
            for &ti in side {
                let (r, t) = self.tuple_of(ti);
                out.push(ProvenanceNeighbor {
                    mapping: m.mapping.clone(),
                    relation: r.to_string(),
                    tuple: t.clone(),
                });
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

/// Which side of a tuple's derivations a provenance page walks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageDirection {
    /// Tuples the queried tuple was derived *from*: the sources of every
    /// mapping instantiation that derives it.
    Sources,
    /// Tuples the queried tuple *feeds*: the targets of every mapping
    /// instantiation that consumes it.
    Targets,
}

/// One derivation neighbor of a queried tuple: the mapping whose
/// instantiation links them, and the neighboring tuple itself.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ProvenanceNeighbor {
    /// The linking mapping.
    pub mapping: MappingId,
    /// Relation of the neighboring tuple.
    pub relation: String,
    /// The neighboring tuple.
    pub tuple: Tuple,
}

impl fmt::Display for ProvenanceGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "provenance graph: {} tuple nodes, {} mapping nodes",
            self.num_tuple_nodes(),
            self.num_mapping_nodes()
        )?;
        for m in &self.mappings {
            let srcs: Vec<String> = m
                .sources
                .iter()
                .map(|&s| {
                    let (r, t) = self.tuple_of(s);
                    format!("{r}{t}")
                })
                .collect();
            let tgts: Vec<String> = m
                .targets
                .iter()
                .map(|&s| {
                    let (r, t) = self.tuple_of(s);
                    format!("{r}{t}")
                })
                .collect();
            writeln!(
                f,
                "  {} : {} -> {}",
                m.mapping,
                srcs.join(" ∧ "),
                tgts.join(", ")
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_storage::tuple::int_tuple;

    /// Build the provenance graph of the paper's running example
    /// (Examples 3, 5 and 6):
    ///
    /// base: G(1,2,3), G(3,5,2), B(3,5), U(2,5)
    /// m1: G(i,c,n) -> B(i,n)      gives B(1,3), B(3,2)
    /// m2: G(i,c,n) -> U(n,c)      gives U(3,2), U(2,5)
    /// m4: B(i,c) ∧ U(n,c) -> B(i,n) gives B(3,2) (from B(3,5), U(2,5)) and B(3,3) (from B(3,2), U(3,2))
    /// m3: B(i,n) -> U(n, c)       gives U(5,c1), U(2,c2), U(3,c3)
    fn example_graph() -> ProvenanceGraph {
        let mut g = ProvenanceGraph::new();
        g.mark_base("G", &int_tuple(&[1, 2, 3]));
        g.mark_base("G", &int_tuple(&[3, 5, 2]));
        g.mark_base("B", &int_tuple(&[3, 5]));
        g.mark_base("U", &int_tuple(&[2, 5]));

        g.add_derivation(
            "m1",
            &[("G", int_tuple(&[1, 2, 3]))],
            &[("B", int_tuple(&[1, 3]))],
        );
        g.add_derivation(
            "m1",
            &[("G", int_tuple(&[3, 5, 2]))],
            &[("B", int_tuple(&[3, 2]))],
        );
        g.add_derivation(
            "m2",
            &[("G", int_tuple(&[1, 2, 3]))],
            &[("U", int_tuple(&[3, 2]))],
        );
        g.add_derivation(
            "m2",
            &[("G", int_tuple(&[3, 5, 2]))],
            &[("U", int_tuple(&[2, 5]))],
        );
        g.add_derivation(
            "m4",
            &[("B", int_tuple(&[3, 5])), ("U", int_tuple(&[2, 5]))],
            &[("B", int_tuple(&[3, 2]))],
        );
        g.add_derivation(
            "m4",
            &[("B", int_tuple(&[3, 2])), ("U", int_tuple(&[3, 2]))],
            &[("B", int_tuple(&[3, 3]))],
        );
        g
    }

    #[test]
    fn expression_matches_example_6() {
        let g = example_graph();
        let e = g.expression_for("B", &int_tuple(&[3, 2]));
        // Pv(B(3,2)) = m1(p3) + m4(p1 · (p2 + m2(p3)))   [U(2,5) is both base
        // and derived via m2, so its own provenance is a sum]
        assert_eq!(e.num_derivations(), 2);
        let s = e.to_string();
        assert!(s.contains("m1(G(3, 5, 2))"));
        assert!(s.contains("m4("));
        // Trust evaluation from Example 7: trusting G and B base data but not
        // U's base tuple still accepts B(3,2).
        assert!(e.evaluate_trust(&|t| t.relation != "U", &|_| true));
        // Distrusting p2 and mapping m1 rejects it only if m2 is also
        // distrusted (the paper's simpler graph lacks the m2 edge; with it,
        // U(2,5) is re-derivable from G).
        assert!(!e.evaluate_trust(&|t| t.relation != "U", &|m| m != "m1" && m != "m2"));
    }

    #[test]
    fn unknown_tuples_have_zero_provenance() {
        let g = example_graph();
        assert_eq!(
            g.expression_for("B", &int_tuple(&[9, 9])),
            ProvenanceExpr::Zero
        );
        assert!(!g.derivable("B", &int_tuple(&[9, 9]), |_| true));
    }

    #[test]
    fn derivability_follows_example_10() {
        let g = example_graph();
        // Everything derivable when all base data is valid.
        assert!(g.derivable("B", &int_tuple(&[3, 2]), |_| true));
        assert!(g.derivable("B", &int_tuple(&[3, 3]), |_| true));

        // Remove base tuple U(2,5) (e.g. a curation deletion): B(3,2) is
        // still derivable through m1 from G(3,5,2).
        let without_u = |t: &ProvenanceToken| !(t.relation == "U" && t.tuple == int_tuple(&[2, 5]));
        assert!(g.derivable("B", &int_tuple(&[3, 2]), without_u));

        // Remove base tuple G(3,5,2): B(3,2) survives via m4 (B(3,5), U(2,5)),
        // but removing both G(3,5,2) and B(3,5) kills it.
        let without_g352 =
            |t: &ProvenanceToken| !(t.relation == "G" && t.tuple == int_tuple(&[3, 5, 2]));
        assert!(g.derivable("B", &int_tuple(&[3, 2]), without_g352));
        let without_both = |t: &ProvenanceToken| {
            !(t.relation == "G" && t.tuple == int_tuple(&[3, 5, 2])
                || t.relation == "B" && t.tuple == int_tuple(&[3, 5]))
        };
        assert!(!g.derivable("B", &int_tuple(&[3, 2]), without_both));
        // And B(3,3), which depends on B(3,2) and U(3,2), dies with G(1,2,3).
        let without_g123 =
            |t: &ProvenanceToken| !(t.relation == "G" && t.tuple == int_tuple(&[1, 2, 3]));
        assert!(!g.derivable("B", &int_tuple(&[3, 3]), without_g123));
    }

    #[test]
    fn cycles_do_not_loop_forever_and_respect_least_fixpoint() {
        // a <-> b mutually derivable, neither base: both underivable.
        let mut g = ProvenanceGraph::new();
        g.add_derivation("m", &[("A", int_tuple(&[1]))], &[("B", int_tuple(&[1]))]);
        g.add_derivation("m", &[("B", int_tuple(&[1]))], &[("A", int_tuple(&[1]))]);
        assert!(!g.derivable("A", &int_tuple(&[1]), |_| true));
        assert!(!g.derivable("B", &int_tuple(&[1]), |_| true));
        // Expressions terminate (cycle cut) and are Zero.
        assert_eq!(
            g.expression_for("A", &int_tuple(&[1])),
            ProvenanceExpr::Zero
        );

        // Adding a base anchor makes both derivable.
        g.mark_base("A", &int_tuple(&[1]));
        assert!(g.derivable("A", &int_tuple(&[1]), |_| true));
        assert!(g.derivable("B", &int_tuple(&[1]), |_| true));
        let e = g.expression_for("B", &int_tuple(&[1]));
        assert!(!e.is_zero());
    }

    #[test]
    fn trusted_set_applies_mapping_conditions_on_derived_data() {
        let g = example_graph();
        // Example 4, second condition: distrust any tuple B(i,n) from (m4)
        // when n != 2: B(3,3) (derived only via m4 with n=3) is rejected,
        // B(3,2) survives.
        let trusted = g.trusted_set(
            |_| true,
            |m, rel, t| {
                if m == "m4" && rel == "B" {
                    t[1] == orchestra_storage::Value::int(2)
                } else {
                    true
                }
            },
        );
        let b32 = g.tuple_node("B", &int_tuple(&[3, 2])).unwrap();
        let b33 = g.tuple_node("B", &int_tuple(&[3, 3])).unwrap();
        assert!(trusted.contains(&b32));
        assert!(!trusted.contains(&b33));
    }

    #[test]
    fn stored_tuple_fast_path_agrees_with_value_path() {
        use orchestra_storage::TupleId;
        let mut g = ProvenanceGraph::new();
        // Value-registered first, then via the stored index: same node.
        let t = int_tuple(&[3, 5]);
        let by_value = g.ensure_tuple("B_l", &t);
        let by_id = g.ensure_stored_tuple("B_l", TupleId(0), &t);
        assert_eq!(by_value, by_id);
        // A stored hit needs no value lookup and returns the same node.
        assert_eq!(g.ensure_stored_tuple("B_l", TupleId(0), &t), by_id);
        // Different relation, same slab id: distinct node.
        let other = g.ensure_stored_tuple("U_l", TupleId(0), &int_tuple(&[9, 9]));
        assert_ne!(other, by_id);
        assert_eq!(g.num_tuple_nodes(), 2);
        // mark_base_stored annotates exactly like mark_base.
        let based = g.mark_base_stored("B_l", TupleId(0), &t);
        assert_eq!(based, by_id);
        assert!(g.is_base(based));
        // Node-id derivations dedup like value derivations.
        assert!(g
            .add_derivation_nodes("m", vec![by_id], vec![other])
            .is_some());
        assert!(g
            .add_derivation_nodes("m", vec![by_id], vec![other])
            .is_none());
        let with_ids: Vec<_> = g.tuple_nodes_with_ids().collect();
        assert_eq!(with_ids.len(), 2);
        assert_eq!(with_ids[0].0, by_id);
    }

    #[test]
    fn duplicate_derivations_are_deduplicated() {
        let mut g = ProvenanceGraph::new();
        let first = g.add_derivation("m1", &[("G", int_tuple(&[1]))], &[("B", int_tuple(&[1]))]);
        let second = g.add_derivation("m1", &[("G", int_tuple(&[1]))], &[("B", int_tuple(&[1]))]);
        assert!(first.is_some());
        assert!(second.is_none());
        assert_eq!(g.num_mapping_nodes(), 1);
        assert_eq!(g.num_tuple_nodes(), 2);
        assert_eq!(g.mapping_of(first.unwrap()), "m1");
    }

    #[test]
    fn display_and_iteration() {
        let g = example_graph();
        let s = g.to_string();
        assert!(s.contains("m4"));
        assert!(s.contains("tuple nodes"));
        let bases = g.tuple_nodes().filter(|(_, _, b)| *b).count();
        assert_eq!(bases, 4);
    }
}
