//! Symbolic provenance expressions (paper §3.2).
//!
//! `Pv(B(3,2)) = m1(p3) + m4(p1 · p2)` is represented as a
//! [`ProvenanceExpr`] tree. Expressions support algebraic simplification and
//! homomorphic evaluation into any [`Semiring`](crate::semiring::Semiring),
//! given an interpretation of tokens and of the per-mapping unary functions.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::semiring::Semiring;
use crate::token::{MappingId, ProvenanceToken};

/// A provenance expression over tokens, `+`, `·`, and mapping applications.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProvenanceExpr {
    /// The additive identity: no derivation.
    Zero,
    /// The multiplicative identity: the empty join.
    One,
    /// The provenance token of a base tuple.
    Token(ProvenanceToken),
    /// Alternative derivations (`+`).
    Sum(Vec<ProvenanceExpr>),
    /// Joint use within one derivation (`·`).
    Product(Vec<ProvenanceExpr>),
    /// Application of a mapping's unary function, `m(e)`.
    Mapping(MappingId, Box<ProvenanceExpr>),
}

impl ProvenanceExpr {
    /// A token leaf.
    pub fn token(t: ProvenanceToken) -> Self {
        ProvenanceExpr::Token(t)
    }

    /// A sum, flattening nested sums and dropping zeros. Returns
    /// [`ProvenanceExpr::Zero`] for an empty sum and the single operand for a
    /// singleton sum.
    pub fn sum(operands: Vec<ProvenanceExpr>) -> Self {
        let mut flat = Vec::new();
        for o in operands {
            match o {
                ProvenanceExpr::Zero => {}
                ProvenanceExpr::Sum(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => ProvenanceExpr::Zero,
            1 => flat.into_iter().next().expect("len checked"),
            _ => ProvenanceExpr::Sum(flat),
        }
    }

    /// A product, flattening nested products, dropping ones, and collapsing
    /// to zero if any factor is zero.
    pub fn product(operands: Vec<ProvenanceExpr>) -> Self {
        let mut flat = Vec::new();
        for o in operands {
            match o {
                ProvenanceExpr::One => {}
                ProvenanceExpr::Zero => return ProvenanceExpr::Zero,
                ProvenanceExpr::Product(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => ProvenanceExpr::One,
            1 => flat.into_iter().next().expect("len checked"),
            _ => ProvenanceExpr::Product(flat),
        }
    }

    /// A mapping application `m(e)`; `m(0)` collapses to `0`.
    pub fn mapping(id: impl Into<MappingId>, inner: ProvenanceExpr) -> Self {
        if matches!(inner, ProvenanceExpr::Zero) {
            ProvenanceExpr::Zero
        } else {
            ProvenanceExpr::Mapping(id.into(), Box::new(inner))
        }
    }

    /// Is this the zero expression?
    pub fn is_zero(&self) -> bool {
        matches!(self, ProvenanceExpr::Zero)
    }

    /// Number of summands, i.e. the number of alternative derivations the
    /// expression records at its top level.
    pub fn num_derivations(&self) -> usize {
        match self {
            ProvenanceExpr::Zero => 0,
            ProvenanceExpr::Sum(v) => v.len(),
            _ => 1,
        }
    }

    /// Recursively sort sum and product operands into a canonical order.
    ///
    /// The provenance graph stores derivations in hash-map order, so two
    /// graphs recording the same derivations can render an expression with
    /// its `+`/`·` operands permuted. Both operations are commutative in
    /// every provenance semiring, so sorting loses nothing — after
    /// canonicalization, semantically equal expressions compare and render
    /// identically. The network layer canonicalizes every `ProvenanceOf`
    /// answer so remote provenance is deterministic.
    pub fn canonicalize(&mut self) {
        match self {
            ProvenanceExpr::Sum(v) | ProvenanceExpr::Product(v) => {
                for e in v.iter_mut() {
                    e.canonicalize();
                }
                v.sort_by_cached_key(|e| e.to_string());
            }
            ProvenanceExpr::Mapping(_, e) => e.canonicalize(),
            ProvenanceExpr::Zero | ProvenanceExpr::One | ProvenanceExpr::Token(_) => {}
        }
    }

    /// [`ProvenanceExpr::canonicalize`], by value.
    pub fn canonical(mut self) -> Self {
        self.canonicalize();
        self
    }

    /// All tokens mentioned anywhere in the expression.
    pub fn tokens(&self) -> Vec<&ProvenanceToken> {
        let mut out = Vec::new();
        self.collect_tokens(&mut out);
        out
    }

    fn collect_tokens<'a>(&'a self, out: &mut Vec<&'a ProvenanceToken>) {
        match self {
            ProvenanceExpr::Zero | ProvenanceExpr::One => {}
            ProvenanceExpr::Token(t) => out.push(t),
            ProvenanceExpr::Sum(v) | ProvenanceExpr::Product(v) => {
                for e in v {
                    e.collect_tokens(out);
                }
            }
            ProvenanceExpr::Mapping(_, e) => e.collect_tokens(out),
        }
    }

    /// All mapping names mentioned anywhere in the expression.
    pub fn mappings(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_mappings(&mut out);
        out
    }

    fn collect_mappings<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            ProvenanceExpr::Zero | ProvenanceExpr::One | ProvenanceExpr::Token(_) => {}
            ProvenanceExpr::Sum(v) | ProvenanceExpr::Product(v) => {
                for e in v {
                    e.collect_mappings(out);
                }
            }
            ProvenanceExpr::Mapping(m, e) => {
                out.push(m);
                e.collect_mappings(out);
            }
        }
    }

    /// Evaluate the expression in a semiring `S`.
    ///
    /// `token_value` interprets base tokens; `mapping_fn` interprets the
    /// application of a mapping to an already-evaluated argument (for the
    /// trust semiring of §3.3 this conjoins the mapping's trust condition
    /// with the argument's trust).
    pub fn eval<S, FT, FM>(&self, token_value: &FT, mapping_fn: &FM) -> S
    where
        S: Semiring,
        FT: Fn(&ProvenanceToken) -> S,
        FM: Fn(&str, S) -> S,
    {
        match self {
            ProvenanceExpr::Zero => S::zero(),
            ProvenanceExpr::One => S::one(),
            ProvenanceExpr::Token(t) => token_value(t),
            ProvenanceExpr::Sum(v) => v
                .iter()
                .map(|e| e.eval(token_value, mapping_fn))
                .fold(S::zero(), |acc, x| acc.plus(&x)),
            ProvenanceExpr::Product(v) => v
                .iter()
                .map(|e| e.eval(token_value, mapping_fn))
                .fold(S::one(), |acc, x| acc.times(&x)),
            ProvenanceExpr::Mapping(m, e) => {
                let inner = e.eval(token_value, mapping_fn);
                mapping_fn(m, inner)
            }
        }
    }

    /// Evaluate trust (boolean semiring, §3.3): `trusted_token` says whether
    /// a base tuple is trusted, `trusted_mapping` whether a use of a mapping
    /// is trusted (independent of the data — data-dependent conditions are
    /// evaluated on the provenance *graph*, which knows the derived tuples).
    pub fn evaluate_trust<FT, FM>(&self, trusted_token: &FT, trusted_mapping: &FM) -> bool
    where
        FT: Fn(&ProvenanceToken) -> bool,
        FM: Fn(&str) -> bool,
    {
        self.eval::<bool, _, _>(trusted_token, &|m, inner| trusted_mapping(m) && inner)
    }
}

impl fmt::Display for ProvenanceExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProvenanceExpr::Zero => write!(f, "0"),
            ProvenanceExpr::One => write!(f, "1"),
            ProvenanceExpr::Token(t) => write!(f, "{t}"),
            ProvenanceExpr::Sum(v) => {
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
            ProvenanceExpr::Product(v) => {
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, "·")?;
                    }
                    match e {
                        ProvenanceExpr::Sum(_) => write!(f, "({e})")?,
                        _ => write!(f, "{e}")?,
                    }
                }
                Ok(())
            }
            ProvenanceExpr::Mapping(m, e) => write!(f, "{m}({e})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{CountingSemiring, Lineage, TropicalSemiring, WhyProvenance};
    use orchestra_storage::tuple::int_tuple;

    fn tok(name: &str, vals: &[i64]) -> ProvenanceToken {
        ProvenanceToken::new(name, int_tuple(vals))
    }

    /// The running example: Pv(B(3,2)) = m1(p3) + m4(p1·p2).
    fn example_expr() -> ProvenanceExpr {
        let p1 = ProvenanceExpr::token(tok("B_l", &[3, 5]));
        let p2 = ProvenanceExpr::token(tok("U_l", &[2, 5]));
        let p3 = ProvenanceExpr::token(tok("G_l", &[3, 5, 2]));
        ProvenanceExpr::sum(vec![
            ProvenanceExpr::mapping("m1", p3),
            ProvenanceExpr::mapping("m4", ProvenanceExpr::product(vec![p1, p2])),
        ])
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(
            example_expr().to_string(),
            "m1(G_l(3, 5, 2)) + m4(B_l(3, 5)·U_l(2, 5))"
        );
    }

    #[test]
    fn simplification_rules() {
        let t = ProvenanceExpr::token(tok("R", &[1]));
        assert_eq!(ProvenanceExpr::sum(vec![]), ProvenanceExpr::Zero);
        assert_eq!(
            ProvenanceExpr::sum(vec![ProvenanceExpr::Zero, t.clone()]),
            t
        );
        assert_eq!(ProvenanceExpr::product(vec![]), ProvenanceExpr::One);
        assert_eq!(
            ProvenanceExpr::product(vec![ProvenanceExpr::Zero, t.clone()]),
            ProvenanceExpr::Zero
        );
        assert_eq!(
            ProvenanceExpr::product(vec![ProvenanceExpr::One, t.clone()]),
            t
        );
        assert_eq!(
            ProvenanceExpr::mapping("m1", ProvenanceExpr::Zero),
            ProvenanceExpr::Zero
        );
        // nested sums flatten
        let nested = ProvenanceExpr::sum(vec![
            ProvenanceExpr::sum(vec![t.clone(), t.clone()]),
            t.clone(),
        ]);
        assert_eq!(nested.num_derivations(), 3);
    }

    #[test]
    fn example_7_trust_evaluation() {
        // PBioSQL trusts p3 (from GUS) and p1 (its own), distrusts p2 (uBio's
        // (2,5)); all mappings trivially trusted. T·T + T·T·D = T.
        let expr = example_expr();
        let trusted = expr.evaluate_trust(&|t| t.relation != "U_l", &|_| true);
        assert!(trusted);

        // Distrusting p3 and mapping m4 kills both derivations.
        let trusted = expr.evaluate_trust(&|t| t.relation != "G_l", &|m| m != "m4");
        assert!(!trusted);

        // The paper's observation: distrusting p2 and m1 rejects B(3,2)...
        let trusted = expr.evaluate_trust(&|t| t.relation != "U_l", &|m| m != "m1");
        assert!(!trusted);
        // ...but distrusting p1 and p2 does not (m1(p3) survives).
        let trusted = expr.evaluate_trust(&|t| t.relation == "G_l", &|_| true);
        assert!(trusted);
    }

    #[test]
    fn counting_evaluation_counts_derivations() {
        let expr = example_expr();
        let n: CountingSemiring = expr.eval(&|_| CountingSemiring(1), &|_, x| x);
        assert_eq!(n, CountingSemiring(2));
    }

    #[test]
    fn tropical_evaluation_costs_cheapest_derivation() {
        // Cost 1 per mapping application, 0 per token.
        let expr = example_expr();
        let cost: TropicalSemiring = expr.eval(&|_| TropicalSemiring(0), &|_, x| {
            x.times(&TropicalSemiring(1))
        });
        assert_eq!(cost, TropicalSemiring(1));
    }

    #[test]
    fn lineage_and_why_provenance_evaluation() {
        let expr = example_expr();
        let lin: Lineage = expr.eval(&|t| Lineage::of_token(t.clone()), &|_, x| x);
        assert_eq!(lin.tokens().unwrap().len(), 3);
        let why: WhyProvenance = expr.eval(&|t| WhyProvenance::of_token(t.clone()), &|_, x| x);
        assert_eq!(why.witnesses().len(), 2);
    }

    #[test]
    fn token_and_mapping_collection() {
        let expr = example_expr();
        assert_eq!(expr.tokens().len(), 3);
        let mut ms = expr.mappings();
        ms.sort();
        assert_eq!(ms, vec!["m1", "m4"]);
        assert_eq!(expr.num_derivations(), 2);
        assert!(!expr.is_zero());
        assert!(ProvenanceExpr::Zero.is_zero());
    }

    #[test]
    fn canonicalization_orders_commutative_operands() {
        let t = |name: &str| ProvenanceExpr::token(tok(name, &[1]));
        let a = ProvenanceExpr::sum(vec![ProvenanceExpr::product(vec![t("b"), t("a")]), t("c")]);
        let b = ProvenanceExpr::sum(vec![t("c"), ProvenanceExpr::product(vec![t("a"), t("b")])]);
        assert_ne!(a, b, "permuted operands differ structurally");
        let (a, b) = (a.canonical(), b.canonical());
        assert_eq!(a, b, "canonical forms agree");
        assert_eq!(a.to_string(), b.to_string());
        // Canonicalization preserves the derivation count.
        assert_eq!(a.num_derivations(), 2);
    }
}
