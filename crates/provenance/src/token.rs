//! Provenance tokens and mapping identifiers.

use std::fmt;

use serde::{Deserialize, Serialize};

use orchestra_storage::Tuple;

/// The name of a schema mapping, e.g. `"m1"`.
///
/// Provenance expressions apply one unary function per mapping; the function
/// is identified by this name (paper §3.2).
pub type MappingId = String;

/// A provenance token: the identity of a *base* tuple, i.e. a tuple inserted
/// directly by a peer's users into a local-contributions table.
///
/// The paper observes (§4.1.2) that under set semantics a tuple is uniquely
/// identified by its relation and values, so the token simply *is* the pair
/// (relation, tuple) — no separate surrogate id is needed.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProvenanceToken {
    /// The relation (normally a local-contributions table `R_l`) the base
    /// tuple lives in.
    pub relation: String,
    /// The base tuple itself.
    pub tuple: Tuple,
}

impl ProvenanceToken {
    /// Create a token for a base tuple of `relation`.
    pub fn new(relation: impl Into<String>, tuple: Tuple) -> Self {
        ProvenanceToken {
            relation: relation.into(),
            tuple,
        }
    }
}

impl fmt::Display for ProvenanceToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.relation, self.tuple)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_storage::tuple::int_tuple;

    #[test]
    fn tokens_are_identified_by_relation_and_values() {
        let a = ProvenanceToken::new("G_l", int_tuple(&[3, 5, 2]));
        let b = ProvenanceToken::new("G_l", int_tuple(&[3, 5, 2]));
        let c = ProvenanceToken::new("B_l", int_tuple(&[3, 5, 2]));
        let d = ProvenanceToken::new("G_l", int_tuple(&[1, 2, 3]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn display_shows_relation_and_tuple() {
        let t = ProvenanceToken::new("G_l", int_tuple(&[3, 5, 2]));
        assert_eq!(t.to_string(), "G_l(3, 5, 2)");
    }
}
