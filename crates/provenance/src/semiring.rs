//! Semiring instances for provenance evaluation.
//!
//! The provenance expressions of §3.2 live in the *free* semiring over
//! provenance tokens (with one unary function per mapping). Concrete
//! provenance models are obtained by evaluating those expressions under a
//! homomorphism into a specific commutative semiring — this is how the paper
//! relates its model to trust (the boolean semiring, §3.3), to bag semantics
//! (the counting semiring, §7), and to lineage / why-provenance (§7).

use std::collections::BTreeSet;
use std::fmt::Debug;

use crate::token::ProvenanceToken;

/// A commutative semiring `(K, +, ·, 0, 1)`.
///
/// Implementations must satisfy the usual laws: both operations are
/// associative and commutative, `0` is the identity of `+` and annihilates
/// `·`, `1` is the identity of `·`, and `·` distributes over `+`. The
/// property-based tests in this crate check these laws on every bundled
/// instance.
pub trait Semiring: Clone + Eq + Debug {
    /// The additive identity (provenance of an underivable tuple).
    fn zero() -> Self;
    /// The multiplicative identity (provenance of "no requirement").
    fn one() -> Self;
    /// Alternative derivations.
    fn plus(&self, other: &Self) -> Self;
    /// Joint use in one derivation.
    fn times(&self, other: &Self) -> Self;

    /// Is this the additive identity? Default: equality with `zero()`.
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }
}

/// The boolean trust semiring `({T, D}, ∨, ∧, D, T)` of §3.3: a tuple is
/// trusted iff at least one of its derivations uses only trusted inputs.
pub type BooleanSemiring = bool;

impl Semiring for bool {
    fn zero() -> Self {
        false
    }
    fn one() -> Self {
        true
    }
    fn plus(&self, other: &Self) -> Self {
        *self || *other
    }
    fn times(&self, other: &Self) -> Self {
        *self && *other
    }
}

/// The counting (natural-number) semiring: evaluates a provenance expression
/// to the number of distinct derivations, generalising bag semantics
/// (paper §7, referencing Mumick–Pirahesh–Ramakrishnan).
///
/// Counts saturate instead of overflowing, since cyclic mapping networks can
/// have astronomically many derivations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CountingSemiring(pub u64);

impl Semiring for CountingSemiring {
    fn zero() -> Self {
        CountingSemiring(0)
    }
    fn one() -> Self {
        CountingSemiring(1)
    }
    fn plus(&self, other: &Self) -> Self {
        CountingSemiring(self.0.saturating_add(other.0))
    }
    fn times(&self, other: &Self) -> Self {
        CountingSemiring(self.0.saturating_mul(other.0))
    }
}

/// The tropical semiring `(ℕ ∪ {∞}, min, +, ∞, 0)`: evaluates a provenance
/// expression to the cost of the cheapest derivation, a natural fit for the
/// "ranked trust models" the paper lists as future work (§8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TropicalSemiring(pub u64);

impl TropicalSemiring {
    /// The infinite cost (additive identity).
    pub const INFINITY: TropicalSemiring = TropicalSemiring(u64::MAX);
}

impl Semiring for TropicalSemiring {
    fn zero() -> Self {
        TropicalSemiring::INFINITY
    }
    fn one() -> Self {
        TropicalSemiring(0)
    }
    fn plus(&self, other: &Self) -> Self {
        TropicalSemiring(self.0.min(other.0))
    }
    fn times(&self, other: &Self) -> Self {
        TropicalSemiring(self.0.saturating_add(other.0))
    }
}

/// Lineage: the set of all base tuples that participate in *some* derivation
/// (Cui-style lineage, paper §7). `None` is the additive identity
/// (underivable); `Some(set)` collects contributing tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lineage(pub Option<BTreeSet<ProvenanceToken>>);

impl Lineage {
    /// Lineage of a base tuple: the singleton set of its own token.
    pub fn of_token(token: ProvenanceToken) -> Self {
        let mut s = BTreeSet::new();
        s.insert(token);
        Lineage(Some(s))
    }

    /// The contributing tokens, if the tuple is derivable at all.
    pub fn tokens(&self) -> Option<&BTreeSet<ProvenanceToken>> {
        self.0.as_ref()
    }
}

impl Semiring for Lineage {
    fn zero() -> Self {
        Lineage(None)
    }
    fn one() -> Self {
        Lineage(Some(BTreeSet::new()))
    }
    fn plus(&self, other: &Self) -> Self {
        match (&self.0, &other.0) {
            (None, _) => other.clone(),
            (_, None) => self.clone(),
            (Some(a), Some(b)) => Lineage(Some(a.union(b).cloned().collect())),
        }
    }
    fn times(&self, other: &Self) -> Self {
        match (&self.0, &other.0) {
            (None, _) | (_, None) => Lineage(None),
            (Some(a), Some(b)) => Lineage(Some(a.union(b).cloned().collect())),
        }
    }
}

/// Why-provenance: the set of *witnesses*, each witness being the set of base
/// tuples used by one derivation (Buneman–Khanna–Tan, paper §7). Strictly
/// coarser than the provenance expressions (it forgets which mappings were
/// used and how many times), which is exactly why the paper needs the richer
/// model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WhyProvenance(pub BTreeSet<BTreeSet<ProvenanceToken>>);

impl WhyProvenance {
    /// Why-provenance of a base tuple: one witness containing only itself.
    pub fn of_token(token: ProvenanceToken) -> Self {
        let mut w = BTreeSet::new();
        w.insert(token);
        let mut s = BTreeSet::new();
        s.insert(w);
        WhyProvenance(s)
    }

    /// The set of witnesses.
    pub fn witnesses(&self) -> &BTreeSet<BTreeSet<ProvenanceToken>> {
        &self.0
    }
}

impl Semiring for WhyProvenance {
    fn zero() -> Self {
        WhyProvenance(BTreeSet::new())
    }
    fn one() -> Self {
        let mut s = BTreeSet::new();
        s.insert(BTreeSet::new());
        WhyProvenance(s)
    }
    fn plus(&self, other: &Self) -> Self {
        WhyProvenance(self.0.union(&other.0).cloned().collect())
    }
    fn times(&self, other: &Self) -> Self {
        let mut out = BTreeSet::new();
        for a in &self.0 {
            for b in &other.0 {
                out.insert(a.union(b).cloned().collect());
            }
        }
        WhyProvenance(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_storage::tuple::int_tuple;

    fn tok(i: i64) -> ProvenanceToken {
        ProvenanceToken::new("R_l", int_tuple(&[i]))
    }

    #[test]
    fn boolean_semiring_is_or_and() {
        assert!(!bool::zero());
        assert!(bool::one());
        assert!(true.plus(&false));
        assert!(!false.plus(&false));
        assert!(!true.times(&false));
        assert!(true.times(&true));
        assert!(bool::zero().is_zero());
    }

    #[test]
    fn counting_semiring_counts_and_saturates() {
        let two = CountingSemiring(2);
        let three = CountingSemiring(3);
        assert_eq!(two.plus(&three), CountingSemiring(5));
        assert_eq!(two.times(&three), CountingSemiring(6));
        assert_eq!(CountingSemiring::zero().times(&three), CountingSemiring(0));
        assert_eq!(CountingSemiring::one().times(&three), three);
        let big = CountingSemiring(u64::MAX);
        assert_eq!(big.plus(&big), big);
        assert_eq!(big.times(&big), big);
    }

    #[test]
    fn tropical_semiring_is_shortest_derivation() {
        let a = TropicalSemiring(4);
        let b = TropicalSemiring(7);
        assert_eq!(a.plus(&b), a);
        assert_eq!(a.times(&b), TropicalSemiring(11));
        assert_eq!(TropicalSemiring::zero(), TropicalSemiring::INFINITY);
        assert_eq!(TropicalSemiring::zero().plus(&b), b);
        assert_eq!(TropicalSemiring::one().times(&b), b);
        // zero annihilates (saturating add with infinity stays infinity)
        assert_eq!(
            TropicalSemiring::zero().times(&b),
            TropicalSemiring::INFINITY
        );
    }

    #[test]
    fn lineage_unions_contributing_tokens() {
        let a = Lineage::of_token(tok(1));
        let b = Lineage::of_token(tok(2));
        let joined = a.times(&b);
        assert_eq!(joined.tokens().unwrap().len(), 2);
        let alt = a.plus(&b);
        assert_eq!(alt.tokens().unwrap().len(), 2);
        // zero is absorbing for times, identity for plus
        assert_eq!(Lineage::zero().times(&a), Lineage::zero());
        assert_eq!(Lineage::zero().plus(&a), a);
        assert_eq!(Lineage::one().times(&a), a);
        assert!(Lineage::zero().is_zero());
    }

    #[test]
    fn why_provenance_tracks_witnesses_separately() {
        // Pv = p1·p2 + p3 : two witnesses {p1,p2} and {p3}.
        let p1p2 = WhyProvenance::of_token(tok(1)).times(&WhyProvenance::of_token(tok(2)));
        let p3 = WhyProvenance::of_token(tok(3));
        let total = p1p2.plus(&p3);
        assert_eq!(total.witnesses().len(), 2);
        // Lineage of the same expression loses the distinction: one flat set.
        let lineage = Lineage::of_token(tok(1))
            .times(&Lineage::of_token(tok(2)))
            .plus(&Lineage::of_token(tok(3)));
        assert_eq!(lineage.tokens().unwrap().len(), 3);
    }

    #[test]
    fn why_provenance_identities() {
        let a = WhyProvenance::of_token(tok(1));
        assert_eq!(WhyProvenance::one().times(&a), a);
        assert_eq!(WhyProvenance::zero().plus(&a), a);
        assert_eq!(WhyProvenance::zero().times(&a), WhyProvenance::zero());
    }
}
