//! Stratification pass.
//!
//! Delegates to [`Program::stratify_detailed`] (the evaluator's own
//! stratifier, extracted in `crates/datalog` to report its evidence) and
//! renders the negative cycle as an `E006` with every rule that closes it.

use orchestra_datalog::Program;

use crate::diagnostics::{Code, Diagnostic};

/// Emit `E006` if the program negates through recursion.
pub(crate) fn check(program: &Program, diagnostics: &mut Vec<Diagnostic>) {
    let Err(failure) = program.stratify_detailed() else {
        return;
    };
    let cycle_set: std::collections::BTreeSet<&str> =
        failure.cycle.iter().map(String::as_str).collect();
    let mut diag = Diagnostic::new(
        Code::E006,
        format!(
            "program cannot be stratified: `{}` is derived through its own \
             negation via {}",
            failure.relation,
            failure.cycle.join(" -> "),
        ),
    );
    // Anchor on the rule that negates the first cycle hop; list every rule
    // that keeps the cycle closed as notes.
    for (ri, rule) in program.rules().iter().enumerate() {
        let head_on_cycle = cycle_set.contains(rule.head.relation.as_str());
        if !head_on_cycle {
            continue;
        }
        for lit in &rule.body {
            if !cycle_set.contains(lit.relation()) {
                continue;
            }
            if lit.negated && diag.rule_span.is_none() {
                diag = diag.with_rule(ri, rule);
            }
            diag = diag.with_note(format!(
                "rule {}: `{}` makes `{}` depend {} on `{}`",
                ri,
                rule,
                rule.head.relation,
                if lit.negated {
                    "negatively"
                } else {
                    "positively"
                },
                lit.relation(),
            ));
        }
    }
    diagnostics.push(diag);
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_datalog::parse_program;

    fn run(src: &str) -> Vec<Diagnostic> {
        let program = parse_program(src).unwrap();
        let mut diags = Vec::new();
        check(&program, &mut diags);
        diags
    }

    #[test]
    fn stratified_negation_passes() {
        assert!(run("Ro(x) :- Rt(x), not Rr(x).\nS(x) :- Ro(x).").is_empty());
    }

    #[test]
    fn negative_cycle_is_rendered() {
        let diags = run("p(x) :- base(x), not q(x).\n\
             q(x) :- r(x).\n\
             r(x) :- p(x).\n");
        assert_eq!(diags.len(), 1);
        let diag = &diags[0];
        assert_eq!(diag.code, Code::E006);
        assert!(diag.message.contains("p -> q -> r -> p"));
        // Anchored on the negating rule, with every cycle rule noted.
        assert_eq!(diag.rule_span.as_ref().unwrap().index, 0);
        assert!(diag.notes.iter().any(|n| n.contains("negatively")));
        assert!(diag.notes.len() >= 3);
    }
}
