//! Termination pass: weak acyclicity of the position dependency graph.
//!
//! Fagin et al. ("Data Exchange: Semantics and Query Answering") prove the
//! chase terminates on every instance iff the mapping set is *weakly acyclic*:
//! build a graph over `(relation, column)` positions with a **regular** edge
//! wherever a rule copies a body variable into a head position and a
//! **special** edge wherever a body variable feeds a value-inventing
//! (existential) head position; the set is weakly acyclic iff no special edge
//! lies on a cycle.
//!
//! The compiled programs here invent values with Skolem functions, so special
//! edges run from each position of a Skolem argument variable to the
//! Skolem-carrying head position. A special edge on a cycle means each round
//! of the chase can feed a freshly invented labeled null back into the very
//! join that invents the next one — the fixpoint diverges.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use orchestra_datalog::{Program, Term};

use crate::diagnostics::{Code, Diagnostic};

/// A node of the position dependency graph: `(relation, column)`.
type Position = (String, usize);

fn fmt_pos(pos: &Position) -> String {
    format!("{}[{}]", pos.0, pos.1)
}

/// Edges of the position graph, each labelled with the (first) rule index
/// that introduces it.
#[derive(Default)]
struct PositionGraph {
    /// All edges (regular and special) as adjacency lists, for reachability.
    adjacency: BTreeMap<Position, BTreeMap<Position, usize>>,
    /// The special (value-inventing) edges: `(from, to, rule)`.
    special: Vec<(Position, Position, usize)>,
}

impl PositionGraph {
    fn build(program: &Program) -> Self {
        let mut graph = PositionGraph::default();
        for (ri, rule) in program.rules().iter().enumerate() {
            // Where each variable is bound by the positive body.
            let mut var_positions: BTreeMap<&str, BTreeSet<Position>> = BTreeMap::new();
            for lit in rule.body.iter().filter(|l| !l.negated) {
                for (col, term) in lit.atom.terms.iter().enumerate() {
                    if let Term::Var(v) = term {
                        var_positions
                            .entry(v.as_str())
                            .or_default()
                            .insert((lit.atom.relation.clone(), col));
                    }
                }
            }
            for (col, term) in rule.head.terms.iter().enumerate() {
                let to: Position = (rule.head.relation.clone(), col);
                match term {
                    Term::Var(v) => {
                        for from in var_positions.get(v.as_str()).into_iter().flatten() {
                            graph.add(from.clone(), to.clone(), ri, false);
                        }
                    }
                    Term::Skolem(_, args) => {
                        let mut vars = BTreeSet::new();
                        for arg in args {
                            arg.collect_vars(&mut vars);
                        }
                        for v in vars {
                            for from in var_positions.get(v).into_iter().flatten() {
                                graph.add(from.clone(), to.clone(), ri, true);
                            }
                        }
                    }
                    Term::Const(_) => {}
                }
            }
        }
        graph
    }

    fn add(&mut self, from: Position, to: Position, rule: usize, special: bool) {
        self.adjacency
            .entry(from.clone())
            .or_default()
            .entry(to.clone())
            .or_insert(rule);
        if special {
            self.special.push((from, to, rule));
        }
    }

    /// Shortest path `from →* to` as `(position, rule-into-it)` steps, or
    /// `None` if unreachable. The first element is `from` itself (no rule).
    fn path(&self, from: &Position, to: &Position) -> Option<Vec<(Position, Option<usize>)>> {
        let mut parent: BTreeMap<&Position, (&Position, usize)> = BTreeMap::new();
        let mut seen: BTreeSet<&Position> = BTreeSet::from([from]);
        let mut queue = VecDeque::from([from]);
        while let Some(node) = queue.pop_front() {
            if node == to {
                let mut steps = Vec::new();
                let mut cur = node;
                while let Some(&(prev, rule)) = parent.get(cur) {
                    steps.push((cur.clone(), Some(rule)));
                    cur = prev;
                }
                steps.push((from.clone(), None));
                steps.reverse();
                return Some(steps);
            }
            for (next, &rule) in self.adjacency.get(node).into_iter().flatten() {
                if seen.insert(next) {
                    parent.insert(next, (node, rule));
                    queue.push_back(next);
                }
            }
        }
        None
    }
}

/// Emit an `E001` for every rule whose Skolem-creating edge lies on a cycle.
pub(crate) fn check(program: &Program, diagnostics: &mut Vec<Diagnostic>) {
    let graph = PositionGraph::build(program);
    let mut flagged_rules: BTreeSet<usize> = BTreeSet::new();
    for (from, to, rule) in &graph.special {
        if flagged_rules.contains(rule) {
            continue;
        }
        // The special edge from→to lies on a cycle iff `from` is reachable
        // back from `to`.
        let Some(steps) = graph.path(to, from) else {
            continue;
        };
        flagged_rules.insert(*rule);
        let mut diag = Diagnostic::new(
            Code::E001,
            format!(
                "Skolem values invented at {} flow back into {}, which feeds the \
                 invention again — the update-exchange chase may not terminate",
                fmt_pos(to),
                fmt_pos(from),
            ),
        )
        .with_rule(*rule, &program.rules()[*rule])
        .with_note(format!(
            "rule {}: `{}` invents values at {} from {} (special edge)",
            rule,
            program.rules()[*rule],
            fmt_pos(to),
            fmt_pos(from),
        ));
        for window in steps.windows(2) {
            let (prev, _) = &window[0];
            let (next, rule_in) = &window[1];
            let ri = rule_in.expect("non-initial steps carry their rule");
            diag = diag.with_note(format!(
                "rule {}: `{}` carries {} into {}",
                ri,
                program.rules()[ri],
                fmt_pos(prev),
                fmt_pos(next),
            ));
        }
        diagnostics.push(diag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_datalog::parse_program;

    fn run(src: &str) -> Vec<Diagnostic> {
        let program = parse_program(src).unwrap();
        let mut diags = Vec::new();
        check(&program, &mut diags);
        diags
    }

    #[test]
    fn acyclic_skolem_program_passes() {
        // Example 2's m3 shape: invention that never feeds itself.
        let diags = run("B_i(i, n) :- G_o(i, c, n).\n\
             U_i(n, #f0(n)) :- B_o(i, n).\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn direct_skolem_cycle_is_flagged_with_chain() {
        // R(y, f(y)) :- R(x, y): invented nulls re-enter the inventing join.
        let diags = run("R(y, #f0(y)) :- R(x, y).\n");
        assert_eq!(diags.len(), 1);
        let diag = &diags[0];
        assert_eq!(diag.code, Code::E001);
        assert_eq!(diag.rule_span.as_ref().unwrap().index, 0);
        assert!(diag.message.contains("R[1]"));
        // A self-loop's chain is just the inventing rule itself.
        assert!(diag.notes.iter().any(|n| n.contains("special edge")));
    }

    #[test]
    fn compiled_mapping_cycle_is_flagged_through_relays() {
        // The internalized compilation of `R(x,y) -> ∃z R(y,z)`:
        // provenance rule, inventing rule, and the output relays.
        let diags = run("P_m(x, y) :- R_o(x, y).\n\
             R_i(y, #f0(y)) :- P_m(x, y).\n\
             R_o(a, b) :- R_i(a, b), not R_r(a, b).\n\
             R_o(a, b) :- R_l(a, b).\n");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::E001);
        assert_eq!(diags[0].rule_span.as_ref().unwrap().index, 1);
        // The chain spells out how the invented nulls travel back through
        // the output relay and the provenance rule.
        assert!(diags[0].notes.iter().any(|n| n.contains("special edge")));
        assert!(diags[0].notes.iter().any(|n| n.contains("carries")));
    }

    #[test]
    fn invention_from_disjoint_columns_passes() {
        // Nulls land in a column that never reaches the Skolem's inputs.
        let diags = run("S(x, #f0(x)) :- R(x, y).\n\
             T(x) :- S(x, z).\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn one_report_per_inventing_rule() {
        // Two special edges from the same rule on the same cycle: one E001.
        let diags = run("R(y, #f0(x, y)) :- R(x, y).\n");
        assert_eq!(diags.len(), 1);
    }
}
