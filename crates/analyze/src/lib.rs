//! # orchestra-analyze
//!
//! A multi-pass static analyzer for the mapping/datalog programs the CDSS
//! evaluates. The paper's update exchange is a chase over compiled schema
//! mappings with Skolem functions; whether that chase *terminates* is a
//! static property of the program — weak acyclicity of its position
//! dependency graph (Fagin et al., *Data Exchange: Semantics and Query
//! Answering*). This crate decides it, along with every other program-level
//! precondition the engine otherwise discovers the hard way, and reports
//! each finding as a structured [`Diagnostic`] with a stable code:
//!
//! | code | finding |
//! |------|---------|
//! | `E001` | weak-acyclicity violation — a Skolem-creating head position lies on a cycle |
//! | `E002` | head variable not bound by a positive body atom |
//! | `E003` | negated-atom variable not bound by a positive body atom |
//! | `E004` | Skolem term in a rule body |
//! | `E005` | relation used with conflicting arities |
//! | `E006` | program negates through recursion (not stratifiable) |
//! | `E007` | rule derives a declared edb relation |
//! | `W001` | derived relation never used (and not an output root) |
//! | `W002` | rule body requires an atom both positively and negatively |
//! | `W003` | all-Skolem head — unreachable by any bound demand adornment |
//! | `W004` | body references a relation nothing can populate |
//!
//! ```
//! use orchestra_analyze::{Analyzer, Code};
//! use orchestra_datalog::parse_program;
//!
//! // Invented nulls feed the join that invents the next one: diverges.
//! let program = parse_program("R(y, #f0(y)) :- R(x, y).").unwrap();
//! let report = Analyzer::new().analyze(&program);
//! assert_eq!(report.errors().next().unwrap().code, Code::E001);
//! assert!(Analyzer::new().check(&program).is_err());
//! ```
//!
//! The crate is hermetic (depends only on `orchestra-datalog`): `crates/core`
//! runs it at registration and `update_exchange` entry, `crates/net` rejects
//! wire-submitted mappings with the rendered report, and the `orchestra-lint`
//! binary runs it offline over program files.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod diagnostics;
mod hygiene;
mod safety;
mod schema;
mod strat;
mod termination;

use std::collections::BTreeSet;
use std::fmt;

use orchestra_datalog::{Program, SourceSpan};

pub use diagnostics::{Code, Diagnostic, RuleRef, Severity};

/// The analyzer: configuration plus the pass pipeline.
///
/// Two optional pieces of context sharpen the findings:
///
/// * [`with_declared_edbs`](Analyzer::with_declared_edbs) — the relations the
///   caller knows to be extensional. Enables `E007` (a rule deriving into an
///   edb) and `W004` (a body relation nothing can populate).
/// * [`with_roots`](Analyzer::with_roots) — relations that are outputs in
///   their own right (queried by users, exported over the wire). Exempts
///   them from `W001`.
#[derive(Debug, Clone, Default)]
pub struct Analyzer {
    declared_edbs: Option<BTreeSet<String>>,
    roots: BTreeSet<String>,
}

impl Analyzer {
    /// An analyzer with no schema context: all error passes run, `E007` and
    /// `W004` are skipped, and every unused relation warns.
    pub fn new() -> Self {
        Analyzer::default()
    }

    /// Declare the extensional relations (enables `E007`/`W004`).
    pub fn with_declared_edbs<I, S>(mut self, edbs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.declared_edbs = Some(edbs.into_iter().map(Into::into).collect());
        self
    }

    /// Declare output roots exempt from the unused-relation warning.
    pub fn with_roots<I, S>(mut self, roots: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.roots.extend(roots.into_iter().map(Into::into));
        self
    }

    /// Run every pass and collect all findings (errors and warnings).
    pub fn analyze(&self, program: &Program) -> AnalysisReport {
        let mut diagnostics = Vec::new();
        schema::check(program, self.declared_edbs.as_ref(), &mut diagnostics);
        safety::check(program, &mut diagnostics);
        termination::check(program, &mut diagnostics);
        strat::check(program, &mut diagnostics);
        hygiene::check(
            program,
            self.declared_edbs.as_ref(),
            &self.roots,
            &mut diagnostics,
        );
        // Errors before warnings; within a severity, keep pass order (schema
        // problems explain downstream findings) but sort by anchored rule so
        // reports read top-to-bottom through the program.
        diagnostics.sort_by_key(|d| {
            (
                std::cmp::Reverse(d.severity),
                d.rule_span.as_ref().map_or(usize::MAX, |r| r.index),
                d.code,
            )
        });
        AnalysisReport { diagnostics }
    }

    /// Like [`analyze`](Analyzer::analyze), but package a report containing
    /// errors as an [`AnalysisError`] (warnings alone still pass).
    pub fn check(&self, program: &Program) -> Result<AnalysisReport, AnalysisError> {
        let report = self.analyze(program);
        if report.has_errors() {
            Err(AnalysisError { report })
        } else {
            Ok(report)
        }
    }
}

/// All findings from one analyzer run, in render order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnalysisReport {
    diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// Every finding, errors first.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// The error findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.is_error())
    }

    /// The warning findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| !d.is_error())
    }

    /// Does the report contain at least one error?
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// No findings at all (not even warnings)?
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Attach source byte spans to the rule anchors (`spans[i]` is rule `i`,
    /// as returned by [`orchestra_datalog::parse_program_spanned`]).
    pub fn attach_spans(&mut self, spans: &[SourceSpan]) {
        for diag in &mut self.diagnostics {
            if let Some(rule) = &mut diag.rule_span {
                rule.span = spans.get(rule.index).copied();
            }
        }
    }

    /// Render every finding as plain text (rule anchors as `rule N`).
    pub fn render(&self) -> String {
        self.render_inner(None)
    }

    /// Render with `file:line:col` anchors resolved against the source text
    /// the program was parsed from (requires [`attach_spans`](Self::attach_spans)).
    pub fn render_for_file(&self, file: &str, source: &str) -> String {
        self.render_inner(Some((file, source)))
    }

    fn render_inner(&self, source: Option<(&str, &str)>) -> String {
        let mut out = String::new();
        for diag in &self.diagnostics {
            diag.render_into(&mut out, source);
        }
        let errors = self.errors().count();
        let warnings = self.warnings().count();
        if errors > 0 || warnings > 0 {
            use std::fmt::Write;
            let _ = writeln!(out, "{errors} error(s), {warnings} warning(s)");
        }
        out
    }
}

/// A program rejected by static analysis: the full report, of which at least
/// one finding is an error.
///
/// `Display` renders only the errors (the wire error message should not drown
/// the rejection in hygiene warnings); [`AnalysisError::report`] has
/// everything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisError {
    report: AnalysisReport,
}

impl AnalysisError {
    /// Package a report as an error; `None` if the report has no errors.
    pub fn from_report(report: AnalysisReport) -> Option<Self> {
        report.has_errors().then_some(AnalysisError { report })
    }

    /// The full report, warnings included.
    pub fn report(&self) -> &AnalysisReport {
        &self.report
    }

    /// The distinct error codes present, in order (used to label
    /// `analyze_rejected_total`).
    pub fn error_codes(&self) -> Vec<Code> {
        let mut codes: Vec<Code> = self.report.errors().map(|d| d.code).collect();
        codes.dedup();
        codes
    }
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let errors = self.report.errors().count();
        writeln!(
            f,
            "program rejected by static analysis ({errors} error(s)):"
        )?;
        let mut out = String::new();
        for diag in self.report.errors() {
            diag.render_into(&mut out, None);
        }
        f.write_str(out.trim_end())
    }
}

impl std::error::Error for AnalysisError {}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_datalog::{parse_program, parse_program_spanned};

    #[test]
    fn clean_program_has_empty_report() {
        let program = parse_program(
            "B_i(i, n) :- G_o(i, c, n).\n\
             U_i(n, #f0(n)) :- B_o(i, n).\n",
        )
        .unwrap();
        let report = Analyzer::new().with_roots(["B_i", "U_i"]).analyze(&program);
        assert!(report.is_clean(), "{}", report.render());
        assert!(Analyzer::new()
            .with_roots(["B_i", "U_i"])
            .check(&program)
            .is_ok());
    }

    #[test]
    fn errors_sort_before_warnings_and_render_counts() {
        let program = parse_program(
            "Dead(x) :- G(x).\n\
             R(y, #f0(y)) :- R(x, y).\n",
        )
        .unwrap();
        let report = Analyzer::new().analyze(&program);
        assert!(report.has_errors());
        let codes: Vec<Code> = report.diagnostics().iter().map(|d| d.code).collect();
        assert_eq!(codes, vec![Code::E001, Code::W001]);
        let text = report.render();
        assert!(text.contains("1 error(s), 1 warning(s)"), "{text}");
    }

    #[test]
    fn analysis_error_renders_only_errors() {
        let program = parse_program(
            "Dead(x) :- G(x).\n\
             R(y, #f0(y)) :- R(x, y).\n",
        )
        .unwrap();
        let err = Analyzer::new().check(&program).unwrap_err();
        assert_eq!(err.error_codes(), vec![Code::E001]);
        let text = err.to_string();
        assert!(text.contains("E001"));
        assert!(!text.contains("W001"));
        // Warnings alone do not reject.
        let warn_only = parse_program("Dead(x) :- G(x).").unwrap();
        assert!(Analyzer::new().check(&warn_only).is_ok());
    }

    #[test]
    fn spans_flow_into_file_renders() {
        let src = "% demo\nR(y, #f0(y)) :- R(x, y).\n";
        let (program, spans) = parse_program_spanned(src).unwrap();
        let mut report = Analyzer::new().with_roots(["R"]).analyze(&program);
        report.attach_spans(&spans);
        let text = report.render_for_file("demo.dl", src);
        assert!(text.contains("demo.dl:2:1"), "{text}");
    }

    #[test]
    fn multi_error_program_reports_every_class() {
        let program = parse_program(
            "B(x, y) :- G(x).\n\
             G(q) :- B(q, q), not G(q).\n",
        )
        .unwrap();
        let report = Analyzer::new().analyze(&program);
        let codes: BTreeSet<&str> = report
            .diagnostics()
            .iter()
            .map(|d| d.code.as_str())
            .collect();
        // E002 (y unbound), E005 (G arity 1 vs … consistent actually) — check
        // the ones that must fire:
        assert!(codes.contains("E002"), "{codes:?}");
        assert!(codes.contains("E006"), "{codes:?}");
    }
}
