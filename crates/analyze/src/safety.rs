//! Safety / range-restriction pass.
//!
//! Mirrors the evaluator's per-rule `validate` but reports *every* violation
//! as a structured diagnostic instead of bailing at the first: Skolem terms
//! in bodies (E004), head variables unbound by the positive body (E002), and
//! negated-atom variables unbound by the positive body (E003).

use std::collections::BTreeSet;

use orchestra_datalog::Program;

use crate::diagnostics::{Code, Diagnostic};

/// Emit E002/E003/E004 for every unsafe rule.
pub(crate) fn check(program: &Program, diagnostics: &mut Vec<Diagnostic>) {
    for (ri, rule) in program.rules().iter().enumerate() {
        for lit in &rule.body {
            if lit.atom.contains_skolem() {
                diagnostics.push(
                    Diagnostic::new(
                        Code::E004,
                        format!(
                            "body atom `{}` applies a Skolem function; Skolem terms may \
                             only invent values in rule heads",
                            lit.atom
                        ),
                    )
                    .with_rule(ri, rule),
                );
            }
        }
        let bound: BTreeSet<&str> = rule.positive_body_variables();
        for var in rule.head.variables() {
            if !bound.contains(var) {
                diagnostics.push(
                    Diagnostic::new(
                        Code::E002,
                        format!("head variable `{var}` is not bound by any positive body atom"),
                    )
                    .with_rule(ri, rule)
                    .with_note(
                        "every head variable must occur in a positive body atom \
                         (range restriction)",
                    ),
                );
            }
        }
        for lit in rule.body.iter().filter(|l| l.negated) {
            for var in lit.atom.variables() {
                if !bound.contains(var) {
                    diagnostics.push(
                        Diagnostic::new(
                            Code::E003,
                            format!(
                                "variable `{var}` of negated atom `{}` is not bound by \
                                 any positive body atom",
                                lit.atom
                            ),
                        )
                        .with_rule(ri, rule)
                        .with_note(
                            "negation is evaluated as an anti-join; unbound variables \
                             under negation have no finite semantics",
                        ),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_datalog::parse_program;

    fn codes(src: &str) -> Vec<Code> {
        let program = parse_program(src).unwrap();
        let mut diags = Vec::new();
        check(&program, &mut diags);
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn safe_rules_pass() {
        assert!(codes("B(i, n) :- G(i, c, n), not R(i, n).").is_empty());
    }

    #[test]
    fn unbound_head_variable() {
        assert_eq!(codes("B(i, n) :- G(i, c, c)."), vec![Code::E002]);
        // Variables inside head Skolem args must be bound too.
        assert_eq!(codes("B(i, #f0(n)) :- G(i, c, c)."), vec![Code::E002]);
    }

    #[test]
    fn unbound_negated_variable() {
        assert_eq!(codes("B(i) :- G(i), not R(i, n)."), vec![Code::E003]);
    }

    #[test]
    fn skolem_in_body() {
        assert_eq!(codes("B(i) :- G(i, #f0(i))."), vec![Code::E004]);
    }

    #[test]
    fn all_violations_in_one_rule_are_reported() {
        let codes = codes("B(x) :- G(y, #f1(y)), not R(z).");
        assert!(codes.contains(&Code::E002)); // x unbound
        assert!(codes.contains(&Code::E003)); // z unbound under negation
        assert!(codes.contains(&Code::E004)); // skolem in body
    }
}
