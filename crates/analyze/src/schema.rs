//! Schema-consistency pass: arity conflicts (E005) and EDB/IDB role
//! conflicts (E007, when the analyzer was told which relations are
//! extensional).

use std::collections::{BTreeMap, BTreeSet};

use orchestra_datalog::Program;

use crate::diagnostics::{Code, Diagnostic};

/// Emit E005/E007 findings.
pub(crate) fn check(
    program: &Program,
    declared_edbs: Option<&BTreeSet<String>>,
    diagnostics: &mut Vec<Diagnostic>,
) {
    // Arity conflicts: remember the first use of each relation and flag every
    // later use that disagrees (one finding per conflicting use, so a single
    // typo'd rule points at itself, not at the whole program).
    let mut first_use: BTreeMap<&str, (usize, usize)> = BTreeMap::new(); // rel -> (arity, rule)
    for (ri, rule) in program.rules().iter().enumerate() {
        let atoms = std::iter::once(&rule.head).chain(rule.body.iter().map(|lit| &lit.atom));
        for atom in atoms {
            match first_use.get(atom.relation.as_str()) {
                Some(&(arity, first_rule)) if arity != atom.arity() => {
                    diagnostics.push(
                        Diagnostic::new(
                            Code::E005,
                            format!(
                                "relation `{}` used with arity {} but previously with \
                                 arity {}",
                                atom.relation,
                                atom.arity(),
                                arity,
                            ),
                        )
                        .with_rule(ri, rule)
                        .with_note(format!(
                            "first used with arity {} in rule {}: `{}`",
                            arity,
                            first_rule,
                            program.rules()[first_rule],
                        )),
                    );
                }
                Some(_) => {}
                None => {
                    first_use.insert(atom.relation.as_str(), (atom.arity(), ri));
                }
            }
        }
    }

    // Role conflicts: a rule head deriving a relation the caller declared
    // extensional means base data would silently become derived data.
    if let Some(edbs) = declared_edbs {
        for (ri, rule) in program.rules().iter().enumerate() {
            if edbs.contains(rule.head.relation.as_str()) {
                diagnostics.push(
                    Diagnostic::new(
                        Code::E007,
                        format!(
                            "rule derives `{}`, which is declared extensional (edb)",
                            rule.head.relation
                        ),
                    )
                    .with_rule(ri, rule)
                    .with_note(
                        "edb relations hold base facts; deriving into one makes its \
                         contents depend on evaluation order",
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_datalog::parse_program;

    fn run(src: &str, edbs: Option<&[&str]>) -> Vec<Diagnostic> {
        let program = parse_program(src).unwrap();
        let edbs = edbs.map(|e| e.iter().map(|s| s.to_string()).collect());
        let mut diags = Vec::new();
        check(&program, edbs.as_ref(), &mut diags);
        diags
    }

    #[test]
    fn consistent_schema_passes() {
        assert!(run("B(i, n) :- G(i, c, n).\nU(n, c) :- G(i, c, n).", None).is_empty());
    }

    #[test]
    fn arity_conflict_points_at_both_uses() {
        let diags = run("B(i, n) :- G(i, c, n).\nS(x) :- G(x, y).", None);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::E005);
        assert_eq!(diags[0].rule_span.as_ref().unwrap().index, 1);
        assert!(diags[0].notes[0].contains("rule 0"));
    }

    #[test]
    fn deriving_a_declared_edb_is_flagged() {
        let diags = run("G(x, y, z) :- H(x, y, z).", Some(&["G"]));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::E007);
        // Without the declaration there is nothing to check.
        assert!(run("G(x, y, z) :- H(x, y, z).", None).is_empty());
    }
}
