//! Hygiene pass: warnings for legal-but-suspect constructs.
//!
//! * **W001** — a derived relation no rule ever reads (and the caller did not
//!   list as an output root): dead derivation work.
//! * **W002** — a body requiring the same atom positively and negatively can
//!   never be satisfied: the rule is unreachable.
//! * **W003** — every head column is a Skolem term, so the `PlanCache`'s
//!   demand adornments can never bind a column of this rule's head: point
//!   queries will always fall back to full scans of it.
//! * **W004** — (with declared edbs) a body references a relation that is
//!   neither derived nor extensional, so the rule can never fire.

use std::collections::BTreeSet;

use orchestra_datalog::{Program, Term};

use crate::diagnostics::{Code, Diagnostic};

/// Emit W001–W004 findings.
pub(crate) fn check(
    program: &Program,
    declared_edbs: Option<&BTreeSet<String>>,
    roots: &BTreeSet<String>,
    diagnostics: &mut Vec<Diagnostic>,
) {
    let idb = program.idb_relations();

    // W001: derived but never read.
    let mut read: BTreeSet<&str> = BTreeSet::new();
    for rule in program.rules() {
        for lit in &rule.body {
            read.insert(lit.relation());
        }
    }
    for relation in &idb {
        if read.contains(relation.as_str()) || roots.contains(relation) {
            continue;
        }
        let (ri, rule) = program
            .rules()
            .iter()
            .enumerate()
            .find(|(_, r)| &r.head.relation == relation)
            .expect("idb relations have a defining rule");
        diagnostics.push(
            Diagnostic::new(
                Code::W001,
                format!(
                    "relation `{relation}` is derived but never used by any rule \
                     (and is not an output root)"
                ),
            )
            .with_rule(ri, rule),
        );
    }

    for (ri, rule) in program.rules().iter().enumerate() {
        // W002: the same atom both required and forbidden.
        let positive: Vec<_> = rule
            .body
            .iter()
            .filter(|l| !l.negated)
            .map(|l| &l.atom)
            .collect();
        if rule
            .body
            .iter()
            .any(|l| l.negated && positive.iter().any(|a| **a == l.atom))
        {
            diagnostics.push(
                Diagnostic::new(
                    Code::W002,
                    "rule body requires the same atom both positively and negatively \
                     and can never be satisfied",
                )
                .with_rule(ri, rule),
            );
        }

        // W003: no bindable head column.
        if !rule.head.terms.is_empty()
            && rule
                .head
                .terms
                .iter()
                .all(|t| matches!(t, Term::Skolem(..)))
        {
            diagnostics.push(
                Diagnostic::new(
                    Code::W003,
                    format!(
                        "every head column of `{}` is a Skolem term; no bound demand \
                         adornment can ever unify with this rule's head",
                        rule.head.relation
                    ),
                )
                .with_rule(ri, rule)
                .with_note(
                    "point queries through the magic-sets rewrite will never use this \
                     rule; only full scans can answer queries over it",
                ),
            );
        }

        // W004: body relation that nothing can ever populate.
        if let Some(edbs) = declared_edbs {
            for lit in &rule.body {
                let rel = lit.relation();
                if !idb.contains(rel) && !edbs.contains(rel) {
                    diagnostics.push(
                        Diagnostic::new(
                            Code::W004,
                            format!(
                                "body atom `{}` references `{rel}`, which is neither \
                                 derived by any rule nor a declared edb; this rule can \
                                 never fire",
                                lit.atom
                            ),
                        )
                        .with_rule(ri, rule),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_datalog::parse_program;

    fn run(src: &str, edbs: Option<&[&str]>, roots: &[&str]) -> Vec<Diagnostic> {
        let program = parse_program(src).unwrap();
        let edbs = edbs.map(|e| e.iter().map(|s| s.to_string()).collect());
        let roots = roots.iter().map(|s| s.to_string()).collect();
        let mut diags = Vec::new();
        check(&program, edbs.as_ref(), &roots, &mut diags);
        diags
    }

    #[test]
    fn unused_relation_warns_unless_rooted() {
        let src = "B(i, n) :- G(i, c, n).";
        let diags = run(src, None, &[]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::W001);
        assert!(run(src, None, &["B"]).is_empty());
        // Used relations never warn.
        assert!(run("B(i) :- G(i).\nS(i) :- B(i).", None, &["S"]).is_empty());
    }

    #[test]
    fn contradictory_body_warns() {
        let diags = run("B(x) :- G(x), not G(x).", None, &["B"]);
        assert_eq!(diags.iter().filter(|d| d.code == Code::W002).count(), 1);
        // Different columns are a different atom — no warning.
        assert!(run("B(x) :- G(x, y), not G(y, x).", None, &["B"]).is_empty());
    }

    #[test]
    fn all_skolem_head_warns() {
        let diags = run("N(#f0(x)) :- G(x).", None, &["N"]);
        assert_eq!(diags.iter().filter(|d| d.code == Code::W003).count(), 1);
        // A mixed head (the compiled m″ shape) stays quiet.
        assert!(run("U(n, #f0(n)) :- B(i, n).", None, &["U"]).is_empty());
    }

    #[test]
    fn unknown_body_relation_warns_with_declared_edbs() {
        let diags = run("B(x) :- Ghost(x).", Some(&["G"]), &["B"]);
        assert_eq!(diags.iter().filter(|d| d.code == Code::W004).count(), 1);
        // Without a declared edb set every body relation might be an edb.
        assert!(run("B(x) :- Ghost(x).", None, &["B"]).is_empty());
    }
}
