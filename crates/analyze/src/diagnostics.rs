//! Structured findings: codes, severities, rule references and rendering.

use std::fmt;

use orchestra_datalog::{Rule, SourceSpan};

/// How serious a finding is.
///
/// Errors make a program unrunnable (the CDSS refuses to register or evaluate
/// it); warnings flag suspicious-but-legal constructs and never block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but legal; evaluation proceeds.
    Warning,
    /// The program is rejected before evaluation.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes, one per analyzer finding kind.
///
/// `E` codes are errors, `W` codes warnings; the numbering is part of the
/// wire/CLI contract (clients grep for `E001`, metrics are labelled by code),
/// so codes are never renumbered — only appended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Code {
    /// Weak-acyclicity violation: a Skolem-creating head position lies on a
    /// cycle of the position dependency graph, so the chase may not terminate.
    E001,
    /// Unsafe head variable: a head variable is not bound by any positive
    /// body atom.
    E002,
    /// Unsafe negation: a variable of a negated body atom is not bound by any
    /// positive body atom.
    E003,
    /// Skolem term in a rule body (Skolem functions may only build values in
    /// heads).
    E004,
    /// A relation is used with two different arities.
    E005,
    /// The program negates through recursion and cannot be stratified.
    E006,
    /// A rule derives a relation that was declared extensional (edb).
    E007,
    /// A derived relation is never used by any rule body (and is not a
    /// declared output root).
    W001,
    /// A rule body requires the same atom both positively and negatively, so
    /// it can never be satisfied.
    W002,
    /// Every head column is a Skolem term, so the rule's head can never unify
    /// with a bound demand adornment (point queries will never use it).
    W003,
    /// A rule body references a relation that is neither derived by any rule
    /// nor a declared edb, so the rule can never fire.
    W004,
}

impl Code {
    /// The canonical `E00x`/`W00x` spelling (used in renders and as the
    /// `code` label on `analyze_rejected_total`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Code::E001 => "E001",
            Code::E002 => "E002",
            Code::E003 => "E003",
            Code::E004 => "E004",
            Code::E005 => "E005",
            Code::E006 => "E006",
            Code::E007 => "E007",
            Code::W001 => "W001",
            Code::W002 => "W002",
            Code::W003 => "W003",
            Code::W004 => "W004",
        }
    }

    /// The severity implied by the code class.
    pub fn severity(&self) -> Severity {
        match self {
            Code::E001
            | Code::E002
            | Code::E003
            | Code::E004
            | Code::E005
            | Code::E006
            | Code::E007 => Severity::Error,
            Code::W001 | Code::W002 | Code::W003 | Code::W004 => Severity::Warning,
        }
    }

    /// One-line description of the finding class (for docs and `--explain`).
    pub fn title(&self) -> &'static str {
        match self {
            Code::E001 => "weak-acyclicity violation (chase may not terminate)",
            Code::E002 => "unsafe head variable",
            Code::E003 => "unsafe variable under negation",
            Code::E004 => "Skolem term in rule body",
            Code::E005 => "arity conflict",
            Code::E006 => "program is not stratifiable",
            Code::E007 => "rule derives a declared edb relation",
            Code::W001 => "derived relation is never used",
            Code::W002 => "rule body is unsatisfiable",
            Code::W003 => "head can never match a bound demand adornment",
            Code::W004 => "rule depends on an unknown relation",
        }
    }

    /// Every code, in rendering order (errors first).
    pub const ALL: [Code; 11] = [
        Code::E001,
        Code::E002,
        Code::E003,
        Code::E004,
        Code::E005,
        Code::E006,
        Code::E007,
        Code::W001,
        Code::W002,
        Code::W003,
        Code::W004,
    ];
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A reference to the rule a diagnostic is about: its index in the program,
/// its rendered text, and (when the program came from a source file) its byte
/// span in that file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleRef {
    /// Zero-based index of the rule in the analyzed program.
    pub index: usize,
    /// The rule, rendered back to datalog syntax.
    pub rendered: String,
    /// Byte span in the source text, if the program was parsed with
    /// [`orchestra_datalog::parse_program_spanned`].
    pub span: Option<SourceSpan>,
}

impl RuleRef {
    /// Build a reference to `rule` at position `index`.
    pub fn new(index: usize, rule: &Rule) -> Self {
        RuleRef {
            index,
            rendered: rule.to_string(),
            span: None,
        }
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code identifying the finding class.
    pub code: Code,
    /// Severity (always `code.severity()`; stored for direct filtering).
    pub severity: Severity,
    /// The rule the finding is anchored to, if any (program-level findings
    /// such as E006 may span several rules; they anchor to one and list the
    /// rest in `notes`).
    pub rule_span: Option<RuleRef>,
    /// Human-readable, single-line statement of the problem.
    pub message: String,
    /// Supporting details: the cycle steps, where a relation was first used,
    /// and similar.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Create a diagnostic with no rule anchor or notes.
    pub fn new(code: Code, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            rule_span: None,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Anchor the diagnostic to a rule.
    pub fn with_rule(mut self, index: usize, rule: &Rule) -> Self {
        self.rule_span = Some(RuleRef::new(index, rule));
        self
    }

    /// Append a note line.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Is this an error (as opposed to a warning)?
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }

    /// Render the diagnostic as text.
    ///
    /// When `source` is given as `(file_name, text)`, rule anchors with spans
    /// are rendered as `file:line:col`; otherwise as `rule N`.
    pub fn render_into(&self, out: &mut String, source: Option<(&str, &str)>) {
        use std::fmt::Write;
        let _ = writeln!(out, "{}[{}]: {}", self.severity, self.code, self.message);
        if let Some(rule) = &self.rule_span {
            match (source, rule.span) {
                (Some((file, text)), Some(span)) => {
                    let (line, col) = orchestra_datalog::line_col(text, span.start);
                    let _ = writeln!(out, "  --> {}:{}:{} (rule {})", file, line, col, rule.index);
                }
                _ => {
                    let _ = writeln!(out, "  --> rule {}", rule.index);
                }
            }
            let _ = writeln!(out, "   | {}", rule.rendered);
        }
        for note in &self.notes {
            let _ = writeln!(out, "  = note: {note}");
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.render_into(&mut out, None);
        f.write_str(out.trim_end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_datalog::parse_rule;

    #[test]
    fn codes_are_stable_and_classed() {
        assert_eq!(Code::E001.as_str(), "E001");
        assert_eq!(Code::E001.severity(), Severity::Error);
        assert_eq!(Code::W003.severity(), Severity::Warning);
        for code in Code::ALL {
            assert_eq!(
                code.as_str().starts_with('E'),
                code.severity() == Severity::Error
            );
        }
    }

    #[test]
    fn render_with_and_without_source() {
        let rule = parse_rule("B(i, n) :- G(i, c, n).").unwrap();
        let diag = Diagnostic::new(Code::E002, "head variable `n` is unbound")
            .with_rule(0, &rule)
            .with_note("bind it in a positive body atom");
        let text = diag.to_string();
        assert!(text.starts_with("error[E002]: head variable `n` is unbound"));
        assert!(text.contains("--> rule 0"));
        assert!(text.contains("B(i, n) :- G(i, c, n)."));
        assert!(text.contains("= note: bind it"));

        let src = "B(i, n) :- G(i, c, n).";
        let mut spanned = diag.clone();
        spanned.rule_span.as_mut().unwrap().span = Some(SourceSpan {
            start: 0,
            end: src.len(),
        });
        let mut out = String::new();
        spanned.render_into(&mut out, Some(("prog.dl", src)));
        assert!(out.contains("--> prog.dl:1:1 (rule 0)"));
    }
}
