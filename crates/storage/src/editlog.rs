//! Edit logs: the "source data" of a CDSS.
//!
//! Each peer's users edit their local instance offline; those edits are
//! recorded in an ordered edit log per relation (`ΔR` in the paper, §3.1).
//! An entry is either an insertion (`+`) or a deletion (`−`) of a tuple.
//! When the peer publishes, the log is *normalised* into its net effect on
//! the local-contributions and rejections tables: an insertion followed by a
//! deletion of the same tuple cancels out, a deletion of a tuple the peer
//! never inserted becomes a rejection of imported data, and so on.

use std::collections::{HashMap, HashSet};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::tuple::Tuple;

/// The kind of an edit-log entry: `+` or `−` in the paper's notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EditOpKind {
    /// `+`: the user inserted the tuple locally.
    Insert,
    /// `−`: the user deleted the tuple (a curation deletion if the tuple was
    /// imported rather than locally inserted).
    Delete,
}

impl fmt::Display for EditOpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditOpKind::Insert => write!(f, "+"),
            EditOpKind::Delete => write!(f, "-"),
        }
    }
}

/// A single edit-log entry: an insertion or deletion of a tuple of one
/// relation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EditOp {
    /// Whether this is an insertion or a deletion.
    pub kind: EditOpKind,
    /// The affected tuple.
    pub tuple: Tuple,
}

impl EditOp {
    /// An insertion entry.
    pub fn insert(tuple: Tuple) -> Self {
        EditOp {
            kind: EditOpKind::Insert,
            tuple,
        }
    }

    /// A deletion entry.
    pub fn delete(tuple: Tuple) -> Self {
        EditOp {
            kind: EditOpKind::Delete,
            tuple,
        }
    }
}

impl fmt::Display for EditOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.kind, self.tuple)
    }
}

/// The net effect of an edit log once replayed in order (see
/// [`EditLog::normalize`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NormalizedEdits {
    /// Tuples the peer contributes locally (net insertions).
    pub contributions: Vec<Tuple>,
    /// Tuples the peer rejects: deletions of data it did not itself insert,
    /// which therefore must have arrived via update exchange (paper §2,
    /// "manual curation").
    pub rejections: Vec<Tuple>,
    /// Tuples whose local contribution was retracted by a later deletion
    /// (they simply disappear from `R_l`; they are *not* rejections).
    pub retracted_contributions: Vec<Tuple>,
}

/// An ordered edit log for one relation (`ΔR`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EditLog {
    relation: String,
    ops: Vec<EditOp>,
}

impl EditLog {
    /// Create an empty edit log for the named (logical) relation.
    pub fn new(relation: impl Into<String>) -> Self {
        EditLog {
            relation: relation.into(),
            ops: Vec::new(),
        }
    }

    /// Reassemble a log from previously recorded entries (used by the
    /// persistence layer when decoding WAL epochs and snapshots).
    pub fn from_ops(relation: impl Into<String>, ops: Vec<EditOp>) -> Self {
        EditLog {
            relation: relation.into(),
            ops,
        }
    }

    /// The logical relation this log belongs to.
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// Append an insertion.
    pub fn push_insert(&mut self, tuple: Tuple) {
        self.ops.push(EditOp::insert(tuple));
    }

    /// Append a deletion.
    pub fn push_delete(&mut self, tuple: Tuple) {
        self.ops.push(EditOp::delete(tuple));
    }

    /// Append an arbitrary entry.
    pub fn push(&mut self, op: EditOp) {
        self.ops.push(op);
    }

    /// Number of entries in the log.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The raw entries, in order.
    pub fn ops(&self) -> &[EditOp] {
        &self.ops
    }

    /// Iterate over the entries in order.
    pub fn iter(&self) -> std::slice::Iter<'_, EditOp> {
        self.ops.iter()
    }

    /// Remove all entries (used after a successful publish).
    pub fn clear(&mut self) {
        self.ops.clear();
    }

    /// Replay the log in order and compute its net effect.
    ///
    /// `previously_contributed` is the set of tuples already present in the
    /// peer's local-contributions table from earlier publishes; deleting one
    /// of those retracts the contribution rather than creating a rejection.
    pub fn normalize(&self, previously_contributed: &HashSet<Tuple>) -> NormalizedEdits {
        self.normalize_with(|t| previously_contributed.contains(t))
    }

    /// Like [`EditLog::normalize`], but with membership in the prior
    /// contributions answered by a predicate — callers holding a
    /// [`crate::Relation`] can pass `|t| rel.contains(t)` directly instead
    /// of materialising its tuples into a set first.
    ///
    /// The replay itself is **id-based**: the log's distinct tuples are
    /// dense-interned once up front, and all the set algebra below (the
    /// cancel / reject / retract transitions) moves `u32` ids instead of
    /// re-hashing and re-comparing tuples per transition. The
    /// `previously_contributed` predicate is consulted at most once per
    /// distinct tuple.
    pub fn normalize_with(
        &self,
        previously_contributed: impl Fn(&Tuple) -> bool,
    ) -> NormalizedEdits {
        // Dense-intern the log's distinct tuples: local id = first-seen order.
        let mut local: HashMap<&Tuple, u32> = HashMap::with_capacity(self.ops.len());
        let mut distinct: Vec<&Tuple> = Vec::new();
        let op_ids: Vec<u32> = self
            .ops
            .iter()
            .map(|op| {
                *local.entry(&op.tuple).or_insert_with(|| {
                    distinct.push(&op.tuple);
                    u32::try_from(distinct.len() - 1).expect("edit log fits u32 ids")
                })
            })
            .collect();

        // Memoized prior-contribution membership, one probe per distinct id.
        let mut prior: Vec<Option<bool>> = vec![None; distinct.len()];

        // Per-id membership flags replace the old HashSet<Tuple> triple;
        // the Vec<u32> orderings preserve the original output order.
        let mut in_inserted = vec![false; distinct.len()];
        let mut in_rejected = vec![false; distinct.len()];
        let mut in_retracted = vec![false; distinct.len()];
        let mut inserted: Vec<u32> = Vec::new();
        let mut rejections: Vec<u32> = Vec::new();
        let mut retracted: Vec<u32> = Vec::new();

        for (op, &id) in self.ops.iter().zip(&op_ids) {
            let i = id as usize;
            match op.kind {
                EditOpKind::Insert => {
                    // Re-inserting a tuple cancels a pending rejection or
                    // retraction of that same tuple.
                    if in_rejected[i] {
                        in_rejected[i] = false;
                        rejections.retain(|&t| t != id);
                    }
                    if in_retracted[i] {
                        in_retracted[i] = false;
                        retracted.retain(|&t| t != id);
                    }
                    if !in_inserted[i] {
                        in_inserted[i] = true;
                        inserted.push(id);
                    }
                }
                EditOpKind::Delete => {
                    if in_inserted[i] {
                        // Deleting something inserted earlier in this same log:
                        // the insertion simply never happened.
                        in_inserted[i] = false;
                        inserted.retain(|&t| t != id);
                    } else if *prior[i].get_or_insert_with(|| previously_contributed(distinct[i])) {
                        // Deleting one of the peer's own earlier contributions:
                        // remove it from R_l (a retraction), not a rejection.
                        if !in_retracted[i] {
                            in_retracted[i] = true;
                            retracted.push(id);
                        }
                    } else {
                        // Deleting data the peer did not insert: it must have
                        // arrived via update exchange, so it is a rejection
                        // that persists in future exchanges (paper §2).
                        if !in_rejected[i] {
                            in_rejected[i] = true;
                            rejections.push(id);
                        }
                    }
                }
            }
        }

        let resolve = |ids: Vec<u32>| -> Vec<Tuple> {
            ids.into_iter()
                .map(|id| distinct[id as usize].clone())
                .collect()
        };
        NormalizedEdits {
            contributions: resolve(inserted),
            rejections: resolve(rejections),
            retracted_contributions: resolve(retracted),
        }
    }
}

impl fmt::Display for EditLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Δ{}", self.relation)?;
        for op in &self.ops {
            writeln!(f, "  {op}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::int_tuple;

    #[test]
    fn simple_insertions_become_contributions() {
        let mut log = EditLog::new("G");
        log.push_insert(int_tuple(&[1, 2, 3]));
        log.push_insert(int_tuple(&[3, 5, 2]));
        let n = log.normalize(&HashSet::new());
        assert_eq!(
            n.contributions,
            vec![int_tuple(&[1, 2, 3]), int_tuple(&[3, 5, 2])]
        );
        assert!(n.rejections.is_empty());
        assert!(n.retracted_contributions.is_empty());
    }

    #[test]
    fn insert_then_delete_cancels() {
        let mut log = EditLog::new("G");
        log.push_insert(int_tuple(&[1, 2, 3]));
        log.push_delete(int_tuple(&[1, 2, 3]));
        let n = log.normalize(&HashSet::new());
        assert!(n.contributions.is_empty());
        assert!(n.rejections.is_empty());
    }

    #[test]
    fn delete_of_foreign_tuple_is_a_rejection() {
        // Example 3 of the paper: a curation deletion of (3,2) in B, which B's
        // users never inserted, becomes a rejection.
        let mut log = EditLog::new("B");
        log.push_delete(int_tuple(&[3, 2]));
        let n = log.normalize(&HashSet::new());
        assert_eq!(n.rejections, vec![int_tuple(&[3, 2])]);
        assert!(n.contributions.is_empty());
    }

    #[test]
    fn delete_of_prior_contribution_is_a_retraction() {
        let mut log = EditLog::new("B");
        log.push_delete(int_tuple(&[3, 5]));
        let mut prior = HashSet::new();
        prior.insert(int_tuple(&[3, 5]));
        let n = log.normalize(&prior);
        assert!(n.rejections.is_empty());
        assert_eq!(n.retracted_contributions, vec![int_tuple(&[3, 5])]);
    }

    #[test]
    fn reinsert_cancels_rejection_and_retraction() {
        let mut log = EditLog::new("B");
        log.push_delete(int_tuple(&[3, 2]));
        log.push_insert(int_tuple(&[3, 2]));
        let n = log.normalize(&HashSet::new());
        assert!(n.rejections.is_empty());
        assert_eq!(n.contributions, vec![int_tuple(&[3, 2])]);

        let mut log = EditLog::new("B");
        log.push_delete(int_tuple(&[3, 5]));
        log.push_insert(int_tuple(&[3, 5]));
        let mut prior = HashSet::new();
        prior.insert(int_tuple(&[3, 5]));
        let n = log.normalize(&prior);
        assert!(n.retracted_contributions.is_empty());
        assert_eq!(n.contributions, vec![int_tuple(&[3, 5])]);
    }

    #[test]
    fn duplicate_operations_are_idempotent() {
        let mut log = EditLog::new("B");
        log.push_insert(int_tuple(&[1, 1]));
        log.push_insert(int_tuple(&[1, 1]));
        log.push_delete(int_tuple(&[9, 9]));
        log.push_delete(int_tuple(&[9, 9]));
        let n = log.normalize(&HashSet::new());
        assert_eq!(n.contributions.len(), 1);
        assert_eq!(n.rejections.len(), 1);
    }

    #[test]
    fn log_bookkeeping() {
        let mut log = EditLog::new("B");
        assert!(log.is_empty());
        log.push(EditOp::insert(int_tuple(&[1, 1])));
        assert_eq!(log.len(), 1);
        assert_eq!(log.relation(), "B");
        assert_eq!(log.ops()[0].kind, EditOpKind::Insert);
        assert_eq!(log.iter().count(), 1);
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn display_uses_paper_notation() {
        let mut log = EditLog::new("G");
        log.push_insert(int_tuple(&[1, 2, 3]));
        log.push_delete(int_tuple(&[3, 2, 1]));
        let s = log.to_string();
        assert!(s.contains("ΔG"));
        assert!(s.contains("+ (1, 2, 3)"));
        assert!(s.contains("- (3, 2, 1)"));
    }
}
