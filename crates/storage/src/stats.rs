//! Size accounting used to reproduce Figure 6 ("Initial instance size") of
//! the paper's evaluation: number of tuples and total payload bytes per
//! relation and per database.

use std::collections::BTreeMap;
use std::fmt;

use crate::database::Database;

/// Per-relation statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationStats {
    /// Relation name.
    pub name: String,
    /// Number of tuples stored.
    pub tuples: usize,
    /// Total payload bytes of the stored tuples.
    pub bytes: usize,
}

/// Aggregate statistics over a whole [`Database`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DatabaseStats {
    /// Statistics per relation, keyed by relation name.
    pub relations: BTreeMap<String, RelationStats>,
    /// Total tuples across all relations.
    pub total_tuples: usize,
    /// Total payload bytes across all relations.
    pub total_bytes: usize,
}

impl DatabaseStats {
    /// Collect statistics from a database.
    pub fn collect(db: &Database) -> Self {
        let mut stats = DatabaseStats::default();
        for rel in db.relations() {
            let rs = RelationStats {
                name: rel.name().to_string(),
                tuples: rel.len(),
                bytes: rel.size_bytes(),
            };
            stats.total_tuples += rs.tuples;
            stats.total_bytes += rs.bytes;
            stats.relations.insert(rs.name.clone(), rs);
        }
        stats
    }

    /// Tuples and bytes summed over relations whose name satisfies a
    /// predicate. The evaluation distinguishes e.g. output tables from
    /// provenance relations, which have different name suffixes.
    pub fn filtered_totals(&self, mut pred: impl FnMut(&str) -> bool) -> (usize, usize) {
        let mut tuples = 0;
        let mut bytes = 0;
        for rs in self.relations.values() {
            if pred(&rs.name) {
                tuples += rs.tuples;
                bytes += rs.bytes;
            }
        }
        (tuples, bytes)
    }

    /// Total size in mebibytes, the unit of Figure 6's right-hand axis.
    pub fn total_mib(&self) -> f64 {
        self.total_bytes as f64 / (1024.0 * 1024.0)
    }
}

impl fmt::Display for DatabaseStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} relations, {} tuples, {:.2} MiB",
            self.relations.len(),
            self.total_tuples,
            self.total_mib()
        )?;
        for rs in self.relations.values() {
            writeln!(
                f,
                "  {:<24} {:>8} tuples {:>10} bytes",
                rs.name, rs.tuples, rs.bytes
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::tuple::{int_tuple, text_tuple};

    #[test]
    fn collects_per_relation_and_totals() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("A", &["x", "y"]))
            .unwrap();
        db.create_relation(RelationSchema::new("B", &["x"]))
            .unwrap();
        db.insert("A", int_tuple(&[1, 2])).unwrap();
        db.insert("A", int_tuple(&[3, 4])).unwrap();
        db.insert("B", text_tuple(&["hello"])).unwrap();

        let stats = db.stats();
        assert_eq!(stats.total_tuples, 3);
        assert_eq!(stats.relations["A"].tuples, 2);
        assert_eq!(stats.relations["A"].bytes, 32);
        assert_eq!(stats.relations["B"].tuples, 1);
        assert!(stats.relations["B"].bytes >= 5);
        assert_eq!(
            stats.total_bytes,
            stats.relations["A"].bytes + stats.relations["B"].bytes
        );
        assert!(stats.total_mib() > 0.0);
    }

    #[test]
    fn filtered_totals_select_by_name() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("B_o", &["x"]))
            .unwrap();
        db.create_relation(RelationSchema::new("B_i", &["x"]))
            .unwrap();
        db.insert("B_o", int_tuple(&[1])).unwrap();
        db.insert("B_i", int_tuple(&[1])).unwrap();
        db.insert("B_i", int_tuple(&[2])).unwrap();
        let stats = db.stats();
        let (t, b) = stats.filtered_totals(|n| n.ends_with("_o"));
        assert_eq!(t, 1);
        assert_eq!(b, 8);
        let (t, _) = stats.filtered_totals(|n| n.ends_with("_i"));
        assert_eq!(t, 2);
    }

    #[test]
    fn display_lists_all_relations() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("A", &["x"]))
            .unwrap();
        db.insert("A", int_tuple(&[1])).unwrap();
        let s = db.stats().to_string();
        assert!(s.contains('A'));
        assert!(s.contains("1 tuples") || s.contains("1 tuple"));
    }
}
