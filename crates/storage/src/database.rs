//! The database: a catalog of named relations.
//!
//! One [`Database`] holds the complete internal state a peer maintains in its
//! auxiliary storage between update exchanges (paper §4): every peer's
//! internal relations (`R_l`, `R_r`, `R_i`, `R_t`, `R_o`) and all provenance
//! relations.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::StorageError;
use crate::index::TupleId;
use crate::pool::{PoolCompaction, PoolStats, ValuePool};
use crate::relation::Relation;
use crate::schema::{RelationName, RelationSchema};
use crate::stats::DatabaseStats;
use crate::tuple::Tuple;
use crate::Result;

/// An in-memory database: a set of named relation instances sharing one
/// global [`ValuePool`].
///
/// The pool is the database's **single intern table**: every value stored in
/// any relation is hash-consed through it, so a [`crate::pool::ValueId`] is
/// meaningful across all relations of one database — the property the
/// interned join pipeline relies on to compare bindings, probe keys and
/// duplicate heads as plain integers.
///
/// Relation names are kept in a `BTreeMap` so iteration order (and therefore
/// every listing and statistic derived from it) is deterministic.
#[derive(Debug, Clone, Default)]
pub struct Database {
    pool: ValuePool,
    relations: BTreeMap<RelationName, Relation>,
}

impl std::cmp::Eq for Database {}

/// Equality compares schemas and tuple sets only; the pools' histories
/// (insertion order, retained-but-unreferenced values) are derived state.
impl PartialEq for Database {
    fn eq(&self, other: &Self) -> bool {
        self.relations == other.relations
    }
}

impl Database {
    /// Create an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Number of relations in the catalog.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// True if the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Does a relation with this name exist?
    pub fn has_relation(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Create a new, empty relation from a schema.
    ///
    /// Fails if a relation with the same name already exists.
    pub fn create_relation(&mut self, schema: RelationSchema) -> Result<&mut Relation> {
        let name = schema.name().to_string();
        if self.relations.contains_key(&name) {
            return Err(StorageError::RelationExists(name));
        }
        self.relations.insert(name.clone(), Relation::new(schema));
        Ok(self.relations.get_mut(&name).expect("just inserted"))
    }

    /// Create the relation if it does not exist yet; otherwise return the
    /// existing one (its schema is left untouched).
    pub fn create_relation_if_absent(&mut self, schema: RelationSchema) -> &mut Relation {
        let name = schema.name().to_string();
        self.relations
            .entry(name)
            .or_insert_with(|| Relation::new(schema))
    }

    /// Adopt a relation's schema and contents into the catalog (used by the
    /// persistence layer when decoding snapshots): create the relation and
    /// intern its tuples through this database's pool.
    ///
    /// Fails if a relation with the same name already exists.
    pub fn adopt_relation(
        &mut self,
        schema: RelationSchema,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<()> {
        let name = schema.name().to_string();
        if self.relations.contains_key(&name) {
            return Err(StorageError::RelationExists(name));
        }
        let mut relation = Relation::new(schema);
        relation.insert_all(&mut self.pool, tuples)?;
        self.relations.insert(name, relation);
        Ok(())
    }

    /// Drop a relation. Returns true if it existed.
    pub fn drop_relation(&mut self, name: &str) -> bool {
        self.relations.remove(name).is_some()
    }

    /// Immutable access to a relation by name.
    pub fn relation(&self, name: &str) -> Result<&Relation> {
        self.relations
            .get(name)
            .ok_or_else(|| StorageError::UnknownRelation(name.to_string()))
    }

    /// Mutable access to a relation by name.
    pub fn relation_mut(&mut self, name: &str) -> Result<&mut Relation> {
        self.relations
            .get_mut(name)
            .ok_or_else(|| StorageError::UnknownRelation(name.to_string()))
    }

    /// The database's value intern pool.
    pub fn pool(&self) -> &ValuePool {
        &self.pool
    }

    /// Mutable access to the intern pool (e.g. for interning rule constants
    /// when compiling join plans against this database).
    pub fn pool_mut(&mut self) -> &mut ValuePool {
        &mut self.pool
    }

    /// Intern-pool hit/miss counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// The live mask of the pool: which ids are still referenced by at
    /// least one live row of any relation.
    fn live_value_mask(&self) -> Vec<bool> {
        let mut live = vec![false; self.pool.len()];
        for rel in self.relations.values() {
            rel.mark_live_values(&mut live);
        }
        live
    }

    /// Number of pool ids still referenced by live rows — the database's
    /// *live vocabulary*. `pool_stats().distinct - live_value_count()` is
    /// the intern memory a [`Database::compact_pool`] pass would reclaim.
    pub fn live_value_count(&self) -> usize {
        self.live_value_mask().iter().filter(|&&l| l).count()
    }

    /// Fraction of pool ids no live row references, in `[0, 1]`; 0 for an
    /// empty pool (never `NaN`). The compaction policy's trigger metric.
    pub fn dead_value_ratio(&self) -> f64 {
        Self::dead_ratio_of(self.pool.len(), self.live_value_count())
    }

    /// The one place the dead ratio is computed: guards the empty pool so
    /// no caller can reintroduce a `0/0 = NaN` against the policy
    /// threshold. Both [`Database::dead_value_ratio`] and the fused
    /// check-and-compact path go through here.
    fn dead_ratio_of(total: usize, live_count: usize) -> f64 {
        if total == 0 {
            return 0.0;
        }
        (total - live_count) as f64 / total as f64
    }

    /// Rebuild the value pool from the values live rows still reference and
    /// re-stamp every relation's interned-row arena with the new dense ids.
    ///
    /// This bounds intern memory for long-running churn workloads: after
    /// the pass, `pool_stats().distinct == live_value_count()`. Tuple
    /// [`TupleId`]s, content hashes, the set-semantics lookup tables and
    /// every secondary index are untouched (all key on content, not pool
    /// ids), so value-keyed reads and provenance `(relation, TupleId)` keys
    /// observe no change. **Every externally cached [`crate::ValueId`] is
    /// invalidated** — callers holding compiled plans or probe keys against
    /// this database must drop them (the CDSS layer resets its plan cache).
    /// Each relation's content version is bumped so stamped caches notice.
    pub fn compact_pool(&mut self) -> PoolCompaction {
        let live = self.live_value_mask();
        self.compact_pool_with_mask(live)
    }

    /// Like [`Database::compact_pool`], but only when the pool holds at
    /// least `min_len` values **and** at least `min_dead_ratio` of its ids
    /// are dead — the policy check and the pass share a single live scan.
    /// Returns `None` when the thresholds decline.
    pub fn compact_pool_if(
        &mut self,
        min_len: usize,
        min_dead_ratio: f64,
    ) -> Option<PoolCompaction> {
        let total = self.pool.len();
        if total == 0 || total < min_len {
            return None;
        }
        let live = self.live_value_mask();
        let live_count = live.iter().filter(|&&l| l).count();
        if Self::dead_ratio_of(total, live_count) < min_dead_ratio {
            return None;
        }
        Some(self.compact_pool_with_mask(live))
    }

    fn compact_pool_with_mask(&mut self, live: Vec<bool>) -> PoolCompaction {
        let _span = orchestra_obs::span("pool-compact", "storage");
        let start = std::time::Instant::now();
        let before = self.pool.len();
        let remap = self.pool.compact(&live);
        for rel in self.relations.values_mut() {
            rel.restamp_rows(&remap);
        }
        orchestra_obs::counter("pool_compactions_total").inc();
        orchestra_obs::histogram("pool_compact_seconds").observe(start.elapsed());
        PoolCompaction {
            before,
            after: self.pool.len(),
        }
    }

    /// Split borrow: mutable access to one relation *and* the shared pool —
    /// what every inserting caller outside this facade needs (the facade
    /// methods below use it themselves).
    pub fn relation_and_pool_mut(&mut self, name: &str) -> Result<(&mut Relation, &mut ValuePool)> {
        let rel = self
            .relations
            .get_mut(name)
            .ok_or_else(|| StorageError::UnknownRelation(name.to_string()))?;
        Ok((rel, &mut self.pool))
    }

    /// Insert a tuple into the named relation.
    pub fn insert(&mut self, relation: &str, tuple: Tuple) -> Result<bool> {
        let (rel, pool) = self.relation_and_pool_mut(relation)?;
        rel.insert(pool, tuple)
    }

    /// Insert a tuple into the named relation, returning its [`TupleId`]
    /// and whether it was new.
    pub fn insert_full(&mut self, relation: &str, tuple: Tuple) -> Result<(TupleId, bool)> {
        let (rel, pool) = self.relation_and_pool_mut(relation)?;
        rel.insert_full(pool, tuple)
    }

    /// Remove a tuple from the named relation.
    pub fn remove(&mut self, relation: &str, tuple: &Tuple) -> Result<bool> {
        self.relation_mut(relation)?.remove(tuple)
    }

    /// Does the named relation contain the tuple? Unknown relations are
    /// reported as an error rather than silently `false`.
    pub fn contains(&self, relation: &str, tuple: &Tuple) -> Result<bool> {
        Ok(self.relation(relation)?.contains(tuple))
    }

    /// Iterate over all relations in name order.
    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        self.relations.values()
    }

    /// Iterate mutably over all relations in name order.
    pub fn relations_mut(&mut self) -> impl Iterator<Item = &mut Relation> {
        self.relations.values_mut()
    }

    /// Names of all relations, in order.
    pub fn relation_names(&self) -> Vec<RelationName> {
        self.relations.keys().cloned().collect()
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Remove all tuples from every relation, keeping the catalog.
    pub fn clear_all(&mut self) {
        for r in self.relations.values_mut() {
            r.clear();
        }
    }

    /// Gather size statistics (tuple counts and byte sizes) for Figure 6.
    pub fn stats(&self) -> DatabaseStats {
        DatabaseStats::collect(self)
    }

    /// A snapshot copy of the whole database. Used by the benchmark harness
    /// to restore the pre-update state between measurement iterations.
    pub fn snapshot(&self) -> Database {
        self.clone()
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in self.relations.values() {
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

/// Anything that can resolve an internal relation name to a [`Relation`].
///
/// Read-only algorithms (provenance-graph reconstruction, containment
/// checks) are written against this trait so they run identically over the
/// live [`Database`] and over immutable snapshots of it maintained by
/// higher layers.
pub trait RelationSource {
    /// The relation stored under `name`, if any.
    fn lookup(&self, name: &str) -> Option<&Relation>;
}

impl RelationSource for Database {
    fn lookup(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::int_tuple;

    #[test]
    fn create_and_lookup() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("B", &["id", "nam"]))
            .unwrap();
        assert!(db.has_relation("B"));
        assert!(!db.has_relation("G"));
        assert_eq!(db.relation_count(), 1);
        assert!(db.relation("B").is_ok());
        assert!(matches!(
            db.relation("G").unwrap_err(),
            StorageError::UnknownRelation(_)
        ));
    }

    #[test]
    fn duplicate_creation_fails_but_if_absent_succeeds() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("B", &["id"]))
            .unwrap();
        assert!(matches!(
            db.create_relation(RelationSchema::new("B", &["id"]))
                .unwrap_err(),
            StorageError::RelationExists(_)
        ));
        // if_absent returns the existing relation untouched
        db.insert("B", int_tuple(&[1])).unwrap();
        let r = db.create_relation_if_absent(RelationSchema::new("B", &["other"]));
        assert_eq!(r.len(), 1);
        assert_eq!(r.schema().attributes(), &["id".to_string()]);
    }

    #[test]
    fn insert_remove_contains_via_database() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("B", &["id", "nam"]))
            .unwrap();
        assert!(db.insert("B", int_tuple(&[3, 5])).unwrap());
        assert!(db.contains("B", &int_tuple(&[3, 5])).unwrap());
        assert!(db.remove("B", &int_tuple(&[3, 5])).unwrap());
        assert!(!db.contains("B", &int_tuple(&[3, 5])).unwrap());
        assert!(db.insert("X", int_tuple(&[1])).is_err());
        assert!(db.contains("X", &int_tuple(&[1])).is_err());
    }

    #[test]
    fn totals_and_clear() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("A", &["x"]))
            .unwrap();
        db.create_relation(RelationSchema::new("B", &["x"]))
            .unwrap();
        db.insert("A", int_tuple(&[1])).unwrap();
        db.insert("A", int_tuple(&[2])).unwrap();
        db.insert("B", int_tuple(&[3])).unwrap();
        assert_eq!(db.total_tuples(), 3);
        db.clear_all();
        assert_eq!(db.total_tuples(), 0);
        assert_eq!(db.relation_count(), 2);
    }

    #[test]
    fn relation_names_are_sorted() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("Z", &["x"]))
            .unwrap();
        db.create_relation(RelationSchema::new("A", &["x"]))
            .unwrap();
        db.create_relation(RelationSchema::new("M", &["x"]))
            .unwrap();
        assert_eq!(db.relation_names(), vec!["A", "M", "Z"]);
    }

    #[test]
    fn snapshot_is_independent() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("A", &["x"]))
            .unwrap();
        db.insert("A", int_tuple(&[1])).unwrap();
        let snap = db.snapshot();
        db.insert("A", int_tuple(&[2])).unwrap();
        assert_eq!(snap.relation("A").unwrap().len(), 1);
        assert_eq!(db.relation("A").unwrap().len(), 2);
    }

    #[test]
    fn compact_pool_reclaims_dead_ids_across_relations() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("A", &["x", "y"]))
            .unwrap();
        db.create_relation(RelationSchema::new("B", &["x"]))
            .unwrap();
        // Churn: every round inserts distinct values and deletes the
        // previous round's, so the live set stays small while the pool
        // grows without bound.
        for round in 0i64..50 {
            db.insert("A", int_tuple(&[round, 1000 + round])).unwrap();
            db.insert("B", int_tuple(&[round])).unwrap();
            if round > 0 {
                db.remove("A", &int_tuple(&[round - 1, 1000 + round - 1]))
                    .unwrap();
                db.remove("B", &int_tuple(&[round - 1])).unwrap();
            }
        }
        assert_eq!(db.total_tuples(), 2);
        assert_eq!(db.pool_stats().distinct, 100);
        // Live vocabulary: {49, 1049} (49 shared between A and B).
        assert_eq!(db.live_value_count(), 2);
        assert!(db.dead_value_ratio() > 0.9);

        let before = db.snapshot();
        let report = db.compact_pool();
        assert_eq!((report.before, report.after), (100, 2));
        assert_eq!(report.reclaimed(), 98);
        assert_eq!(db.pool_stats().distinct, 2);
        assert_eq!(db.pool_stats().compactions, 1);
        assert_eq!(db.dead_value_ratio(), 0.0);
        // Observationally identical.
        assert_eq!(db, before);
        assert!(db.contains("A", &int_tuple(&[49, 1049])).unwrap());
        // The store keeps working: inserts, dedup, removal.
        assert!(db.insert("B", int_tuple(&[7])).unwrap());
        assert!(!db.insert("B", int_tuple(&[7])).unwrap());
        assert!(db.remove("B", &int_tuple(&[7])).unwrap());
    }

    #[test]
    fn dead_value_ratio_of_empty_pool_is_zero() {
        let db = Database::new();
        assert_eq!(db.dead_value_ratio(), 0.0);
        assert!(!db.dead_value_ratio().is_nan());
        assert_eq!(db.live_value_count(), 0);
    }

    #[test]
    fn drop_relation() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new("A", &["x"]))
            .unwrap();
        assert!(db.drop_relation("A"));
        assert!(!db.drop_relation("A"));
        assert!(!db.has_relation("A"));
    }
}
