//! Fast, deterministic hashing for the storage hot paths.
//!
//! The default `std` hasher (SipHash-1-3 behind `RandomState`) is designed
//! to resist hash-flooding from adversarial keys. The storage layer's inner
//! loops — tuple set membership, join-index maintenance, probe keys —
//! hash short, trusted, internally generated data millions of times per
//! exchange, where SipHash's per-call overhead dominates. Two special-purpose
//! hashers fix that:
//!
//! * [`FxHasher`] — the multiply-rotate word hasher popularized by Firefox
//!   and rustc. Used to compute **content hashes** (of values, strings, and
//!   whole tuples) exactly once, at construction.
//! * [`IdentityHasher`] — a pass-through for maps whose keys *are already*
//!   such content hashes (`u64`), so bucketing costs a single multiply
//!   instead of re-hashing the hash.
//!
//! Tuple *contents* can originate from untrusted network peers (the wire
//! layer re-encodes payloads, but re-encoding preserves content), so the Fx
//! state is seeded with a **per-process random value**: collisions cannot be
//! precomputed offline against a public constant. Fx's mixing is still far
//! weaker than SipHash — a peer who can observe timing side channels in
//! detail might search for collisions adaptively — which is an accepted
//! trade-off for an order-of-magnitude cheaper hot loop; revisit if the
//! system ever faces genuinely adversarial multi-tenant traffic.

use std::hash::{BuildHasherDefault, Hasher};
use std::sync::OnceLock;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Per-process random initial state for content hashing. Content hashes are
/// never persisted or sent over the wire (codecs rebuild values through
/// their constructors), so the seed only needs intra-process stability.
fn process_seed() -> u64 {
    static PROCESS_SEED: OnceLock<u64> = OnceLock::new();
    *PROCESS_SEED.get_or_init(|| {
        use std::hash::BuildHasher;
        // RandomState draws from the OS entropy pool once per process.
        std::collections::hash_map::RandomState::new().hash_one(0x5eed_u64)
    })
}

/// The rustc/Firefox "Fx" word-at-a-time hasher, starting from a
/// per-process random state (see [`process_seed`]).
#[derive(Debug, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl Default for FxHasher {
    fn default() -> Self {
        FxHasher {
            hash: process_seed(),
        }
    }
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (chunk, rest) = bytes.split_at(8);
            self.add(u64::from_ne_bytes(chunk.try_into().expect("8-byte chunk")));
            bytes = rest;
        }
        if !bytes.is_empty() {
            let mut tail = [0u8; 8];
            tail[..bytes.len()].copy_from_slice(bytes);
            tail[7] = bytes.len() as u8;
            self.add(u64::from_ne_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }
}

/// Build-hasher for [`FxHasher`]. Zero-sized and deterministic **within one
/// process**: equal input always hashes equally across instances, but the
/// per-process random seed makes hashes differ between runs (nothing
/// persists or transmits them).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Pass-through hasher for maps keyed by precomputed `u64` content hashes.
/// A final multiply re-mixes the bits so maps indexed by the low bits still
/// spread Fx output well.
#[derive(Debug, Default, Clone)]
pub struct IdentityHasher {
    hash: u64,
}

impl Hasher for IdentityHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash.wrapping_mul(SEED)
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("IdentityHasher is only for u64 keys");
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.hash = v;
    }
}

/// Build-hasher for [`IdentityHasher`].
pub type IdBuildHasher = BuildHasherDefault<IdentityHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::hash::BuildHasher;

    #[test]
    fn fx_is_deterministic_and_input_sensitive() {
        let bh = FxBuildHasher::default();
        let h = |s: &str| bh.hash_one(s);
        assert_eq!(h("hello"), h("hello"));
        assert_ne!(h("hello"), h("hellp"));
        assert_ne!(h(""), h("\0"));
        // Chunked vs tail boundaries.
        assert_ne!(h("12345678"), h("123456789"));
    }

    #[test]
    fn fx_integer_writes_match_hash_trait() {
        let bh = FxBuildHasher::default();
        let a = bh.hash_one(42u64);
        let b = bh.hash_one(42u64);
        assert_eq!(a, b);
        assert_ne!(bh.hash_one(42u64), bh.hash_one(43u64));
    }

    #[test]
    fn identity_map_works_with_u64_keys() {
        let mut m: HashMap<u64, &str, IdBuildHasher> = HashMap::default();
        for i in 0..1000u64 {
            m.insert(i.wrapping_mul(0x9E37_79B9_7F4A_7C15), "v");
        }
        assert_eq!(m.len(), 1000);
        assert!(m.contains_key(&0x9E37_79B9_7F4A_7C15u64));
    }

    #[test]
    fn value_hashing_through_fx_is_consistent() {
        use crate::value::Value;
        let bh = FxBuildHasher::default();
        let hash_of = |v: &Value| bh.hash_one(v);
        assert_eq!(hash_of(&Value::int(5)), hash_of(&Value::int(5)));
        assert_ne!(hash_of(&Value::int(5)), hash_of(&Value::text("5")));
        assert_eq!(hash_of(&Value::text("ab")), hash_of(&Value::text("ab")));
    }
}
