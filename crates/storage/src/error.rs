//! Error type for the storage substrate.

use std::fmt;

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A relation with this name already exists in the database.
    RelationExists(String),
    /// No relation with this name exists in the database.
    UnknownRelation(String),
    /// A tuple's arity does not match the relation schema's arity.
    ArityMismatch {
        /// Relation the tuple was destined for.
        relation: String,
        /// Arity declared by the schema.
        expected: usize,
        /// Arity of the offending tuple.
        actual: usize,
    },
    /// An index was requested over column positions outside the schema.
    InvalidColumns {
        /// Relation the index was requested on.
        relation: String,
        /// The offending column positions.
        columns: Vec<usize>,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::RelationExists(name) => {
                write!(f, "relation `{name}` already exists")
            }
            StorageError::UnknownRelation(name) => {
                write!(f, "unknown relation `{name}`")
            }
            StorageError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "arity mismatch for relation `{relation}`: schema has {expected} attributes, tuple has {actual}"
            ),
            StorageError::InvalidColumns { relation, columns } => write!(
                f,
                "invalid column positions {columns:?} for relation `{relation}`"
            ),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_relation_names() {
        let e = StorageError::UnknownRelation("B_o".into());
        assert!(e.to_string().contains("B_o"));
        let e = StorageError::ArityMismatch {
            relation: "G".into(),
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('2'));
        let e = StorageError::RelationExists("U".into());
        assert!(e.to_string().contains("U"));
        let e = StorageError::InvalidColumns {
            relation: "U".into(),
            columns: vec![5],
        };
        assert!(e.to_string().contains('5'));
    }
}
