//! Relation schemas and the naming conventions of the CDSS internal schema.
//!
//! Each user-level relation `R` of a peer is internally expanded into several
//! relations with the same attributes (paper §3.1 and Figure 2):
//!
//! * `R_l` — local contributions,
//! * `R_r` — local rejections,
//! * `R_i` — input table (data produced by update translation),
//! * `R_t` — trusted subset of the input table (§3.3),
//! * `R_o` — curated/output table (what the peer's users query and what is
//!   exported through outgoing mappings).
//!
//! This module owns those naming conventions so that every other crate talks
//! about internal relations consistently.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// The name of a relation, e.g. `"B"` or `"B_i"`.
pub type RelationName = String;

/// The name of an attribute (column).
pub type AttributeName = String;

/// Primitive data types tracked by the catalog.
///
/// The CDSS semantics is untyped (values carry their own type); the declared
/// type is used by the workload generator and for documentation, and `Any`
/// accepts every value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit integers.
    Int,
    /// Strings.
    Text,
    /// Any value, including labeled nulls.
    Any,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "int"),
            DataType::Text => write!(f, "text"),
            DataType::Any => write!(f, "any"),
        }
    }
}

/// The role a relation plays in the internal schema of a peer (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InternalRole {
    /// A user-visible, logical relation of the peer schema.
    Logical,
    /// `R_l`: tuples inserted locally (minus later local deletions).
    LocalContributions,
    /// `R_r`: imported tuples rejected by local curation deletions.
    Rejections,
    /// `R_i`: tuples produced by update translation from other peers.
    Input,
    /// `R_t`: the trusted subset of the input table.
    Trusted,
    /// `R_o`: the curated output table (local instance).
    Output,
    /// A provenance relation `P_mi` for some mapping rule.
    Provenance,
}

impl InternalRole {
    /// Suffix appended to the logical relation name for this role.
    pub fn suffix(self) -> &'static str {
        match self {
            InternalRole::Logical => "",
            InternalRole::LocalContributions => "_l",
            InternalRole::Rejections => "_r",
            InternalRole::Input => "_i",
            InternalRole::Trusted => "_t",
            InternalRole::Output => "_o",
            InternalRole::Provenance => "_p",
        }
    }
}

/// Build the internal relation name for `base` in the given role,
/// e.g. `internal_name("B", InternalRole::Output) == "B_o"`.
pub fn internal_name(base: &str, role: InternalRole) -> RelationName {
    format!("{base}{}", role.suffix())
}

/// The schema of a relation: its name and attribute list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelationSchema {
    name: RelationName,
    attributes: Arc<[AttributeName]>,
    types: Arc<[DataType]>,
}

impl RelationSchema {
    /// Create a schema with the given attribute names, all typed `Any`.
    pub fn new(name: impl Into<String>, attributes: &[&str]) -> Self {
        let attrs: Vec<AttributeName> = attributes.iter().map(|s| s.to_string()).collect();
        let types = vec![DataType::Any; attrs.len()];
        RelationSchema {
            name: name.into(),
            attributes: attrs.into(),
            types: types.into(),
        }
    }

    /// Create a schema with explicit attribute types.
    pub fn with_types(name: impl Into<String>, attributes: &[(&str, DataType)]) -> Self {
        RelationSchema {
            name: name.into(),
            attributes: attributes
                .iter()
                .map(|(a, _)| a.to_string())
                .collect::<Vec<_>>()
                .into(),
            types: attributes
                .iter()
                .map(|(_, t)| *t)
                .collect::<Vec<_>>()
                .into(),
        }
    }

    /// Create an anonymous-attribute schema of the given arity (`c0..c{n-1}`).
    pub fn anonymous(name: impl Into<String>, arity: usize) -> Self {
        let attrs: Vec<String> = (0..arity).map(|i| format!("c{i}")).collect();
        let refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        RelationSchema::new(name, &refs)
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// The attribute names.
    pub fn attributes(&self) -> &[AttributeName] {
        &self.attributes
    }

    /// The declared attribute types.
    pub fn types(&self) -> &[DataType] {
        &self.types
    }

    /// The position of an attribute by name, if present.
    pub fn position_of(&self, attribute: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a == attribute)
    }

    /// A copy of this schema under a different name (same attributes).
    ///
    /// Used when expanding `R` into `R_l`, `R_r`, `R_i`, `R_t`, `R_o`, which
    /// all share the attributes of `R` (paper Figure 2).
    pub fn renamed(&self, name: impl Into<String>) -> Self {
        RelationSchema {
            name: name.into(),
            attributes: Arc::clone(&self.attributes),
            types: Arc::clone(&self.types),
        }
    }

    /// The internal-schema variant of this relation for the given role.
    pub fn internal(&self, role: InternalRole) -> Self {
        self.renamed(internal_name(&self.name, role))
    }
}

impl fmt::Display for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, (a, t)) in self.attributes.iter().zip(self.types.iter()).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}: {t}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_basics() {
        let s = RelationSchema::new("B", &["id", "nam"]);
        assert_eq!(s.name(), "B");
        assert_eq!(s.arity(), 2);
        assert_eq!(s.attributes(), &["id".to_string(), "nam".to_string()]);
        assert_eq!(s.position_of("nam"), Some(1));
        assert_eq!(s.position_of("missing"), None);
    }

    #[test]
    fn typed_schema() {
        let s = RelationSchema::with_types("G", &[("id", DataType::Int), ("nam", DataType::Text)]);
        assert_eq!(s.types(), &[DataType::Int, DataType::Text]);
        assert_eq!(s.to_string(), "G(id: int, nam: text)");
    }

    #[test]
    fn anonymous_schema_names_columns() {
        let s = RelationSchema::anonymous("P", 3);
        assert_eq!(
            s.attributes(),
            &["c0".to_string(), "c1".to_string(), "c2".to_string()]
        );
    }

    #[test]
    fn internal_role_names_follow_paper_conventions() {
        assert_eq!(internal_name("B", InternalRole::LocalContributions), "B_l");
        assert_eq!(internal_name("B", InternalRole::Rejections), "B_r");
        assert_eq!(internal_name("B", InternalRole::Input), "B_i");
        assert_eq!(internal_name("B", InternalRole::Trusted), "B_t");
        assert_eq!(internal_name("B", InternalRole::Output), "B_o");
        assert_eq!(internal_name("B", InternalRole::Logical), "B");
    }

    #[test]
    fn renaming_preserves_attributes() {
        let s = RelationSchema::new("B", &["id", "nam"]);
        let o = s.internal(InternalRole::Output);
        assert_eq!(o.name(), "B_o");
        assert_eq!(o.attributes(), s.attributes());
        let r = s.renamed("B_copy");
        assert_eq!(r.name(), "B_copy");
        assert_eq!(r.arity(), 2);
    }
}
