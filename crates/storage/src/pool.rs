//! The value intern pool: hash-consed [`Value`]s addressed by dense
//! [`ValueId`]s.
//!
//! The incremental update-exchange workloads of the paper (§6) churn over a
//! small vocabulary of values: the same accession numbers, taxon names and
//! labeled nulls flow through deltas, join probes, duplicate-head checks,
//! provenance rows and wire frames over and over. The pool stores each
//! distinct value **once** and hands out a dense `u32` id; everything
//! downstream (relation rows, join bindings, probe keys, delta sets, codec
//! dictionaries) then moves 4-byte ids instead of enum payloads, and
//! equality between pooled values is a single integer compare.
//!
//! The pool is **append-only**: ids stay valid for the lifetime of the
//! owning [`crate::Database`], so compiled join plans and cached probe keys
//! never dangle. The per-value content hash ([`value_hash`]) is computed
//! once at intern time and cached in a dense side array, which is what makes
//! id-keyed row hashing ([`combine_hashes`]) an array walk instead of an
//! enum dispatch.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use crate::fxhash::{FxHasher, IdBuildHasher};
use crate::index::IdVec32;
use crate::value::Value;

/// A dense identifier of an interned [`Value`] inside one [`ValuePool`].
///
/// Ids are pool-local and append-only: once assigned they remain valid (the
/// pool never forgets a value). [`ValueId::NONE`] is reserved as an
/// "unbound" sentinel for the join pipeline and never names a real value.
#[repr(transparent)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

impl ValueId {
    /// Sentinel for "no value": never returned by [`ValuePool::intern`].
    pub const NONE: ValueId = ValueId(u32::MAX);

    /// The dense index this id addresses.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Is this the [`ValueId::NONE`] sentinel?
    #[inline]
    pub fn is_none(self) -> bool {
        self.0 == u32::MAX
    }
}

/// The canonical single-value content hash: the Fx hash of the value. Equal
/// values always hash equally within one process. The pool caches this per
/// id; unpooled values (wire payloads, edit-log tuples) compute it directly.
#[inline]
pub fn value_hash(v: &Value) -> u64 {
    let mut h = FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

/// Combine a sequence of per-value content hashes into one row/bucket hash.
///
/// This is the **shared hashing scheme** of the storage layer: a tuple's
/// content hash, a relation's set-semantics bucket, and a join index bucket
/// are all `combine_hashes` over per-value [`value_hash`]es — so the same
/// bucket is reachable from a `&[Value]` slice (hash each value) *and* from
/// a `&[ValueId]` row (read each cached hash), without the two sides ever
/// agreeing on more than this function.
#[inline]
pub fn combine_hashes(hashes: impl Iterator<Item = u64>) -> u64 {
    let mut h = FxHasher::default();
    for x in hashes {
        h.write_u64(x);
    }
    h.finish()
}

/// Intern-pool hit/miss counters, reported through `EvalStats` and the
/// network `Stats` response.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Intern requests that found the value already pooled.
    pub hits: u64,
    /// Intern requests that had to admit a new value.
    pub misses: u64,
    /// Number of distinct values pooled.
    pub distinct: u64,
}

impl PoolStats {
    /// Hit rate in `[0, 1]`; 0 when nothing was interned yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A hash-consing intern table over [`Value`]s.
#[derive(Debug, Clone, Default)]
pub struct ValuePool {
    /// id → value.
    values: Vec<Value>,
    /// id → cached [`value_hash`].
    hashes: Vec<u64>,
    /// [`value_hash`] → candidate ids (collisions resolved by value compare).
    by_hash: HashMap<u64, IdVec32, IdBuildHasher>,
    hits: u64,
    misses: u64,
}

impl ValuePool {
    /// An empty pool.
    pub fn new() -> Self {
        ValuePool::default()
    }

    /// Number of distinct values pooled.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Is the pool empty?
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Hit/miss counters since construction.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits,
            misses: self.misses,
            distinct: self.values.len() as u64,
        }
    }

    /// The value an id addresses. Ids are append-only, so this is a plain
    /// array index; passing an id from a different pool is a logic error
    /// (caught by the bounds check, not silently misresolved).
    #[inline]
    pub fn value(&self, id: ValueId) -> &Value {
        &self.values[id.index()]
    }

    /// The cached [`value_hash`] of an interned value: an array read, no
    /// enum dispatch.
    #[inline]
    pub fn hash_of(&self, id: ValueId) -> u64 {
        self.hashes[id.index()]
    }

    /// The combined row hash of a `ValueId` slice (see [`combine_hashes`]).
    #[inline]
    pub fn row_hash(&self, row: &[ValueId]) -> u64 {
        combine_hashes(row.iter().map(|&id| self.hashes[id.index()]))
    }

    #[inline]
    fn find(&self, hash: u64, v: &Value) -> Option<ValueId> {
        let bucket = self.by_hash.get(&hash)?;
        bucket
            .as_slice()
            .iter()
            .copied()
            .map(ValueId)
            .find(|&id| self.value(id) == v)
    }

    /// Look a value up without admitting it. `None` means the value has
    /// never been stored anywhere in the owning database — useful as a
    /// negative fast path (an un-pooled value cannot match any stored row).
    #[inline]
    pub fn lookup(&self, v: &Value) -> Option<ValueId> {
        self.find(value_hash(v), v)
    }

    /// Like [`ValuePool::lookup`] with the [`value_hash`] precomputed.
    #[inline]
    pub fn lookup_hashed(&self, hash: u64, v: &Value) -> Option<ValueId> {
        debug_assert_eq!(hash, value_hash(v));
        self.find(hash, v)
    }

    /// Intern a value: return the existing id (hit) or admit a clone of the
    /// value under a fresh dense id (miss).
    #[inline]
    pub fn intern(&mut self, v: &Value) -> ValueId {
        let hash = value_hash(v);
        if let Some(id) = self.find(hash, v) {
            self.hits += 1;
            return id;
        }
        self.admit(hash, v.clone())
    }

    /// Intern an owned value without cloning it on a miss.
    #[inline]
    pub fn intern_owned(&mut self, v: Value) -> ValueId {
        let hash = value_hash(&v);
        if let Some(id) = self.find(hash, &v) {
            self.hits += 1;
            return id;
        }
        self.admit(hash, v)
    }

    fn admit(&mut self, hash: u64, v: Value) -> ValueId {
        self.misses += 1;
        let id = u32::try_from(self.values.len()).expect("value pool exceeds u32 addressing");
        assert_ne!(id, u32::MAX, "value pool exhausted the id space");
        self.values.push(v);
        self.hashes.push(hash);
        self.by_hash.entry(hash).or_default().push(id);
        ValueId(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::SkolemFnId;

    #[test]
    fn interning_is_hash_consing() {
        let mut p = ValuePool::new();
        let a = p.intern(&Value::int(3));
        let b = p.intern(&Value::text("x"));
        let a2 = p.intern(&Value::int(3));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(p.len(), 2);
        assert_eq!(p.value(a), &Value::int(3));
        assert_eq!(p.value(b), &Value::text("x"));
        let s = p.stats();
        assert_eq!((s.hits, s.misses, s.distinct), (1, 2, 2));
        assert!(s.hit_rate() > 0.3 && s.hit_rate() < 0.4);
    }

    #[test]
    fn lookup_does_not_admit() {
        let mut p = ValuePool::new();
        assert_eq!(p.lookup(&Value::int(9)), None);
        let id = p.intern_owned(Value::int(9));
        assert_eq!(p.lookup(&Value::int(9)), Some(id));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn labeled_nulls_intern_structurally() {
        let mut p = ValuePool::new();
        let a = p.intern_owned(Value::labeled_null(SkolemFnId(1), vec![Value::int(2)]));
        let b = p.intern_owned(Value::labeled_null(SkolemFnId(1), vec![Value::int(2)]));
        let c = p.intern_owned(Value::labeled_null(SkolemFnId(1), vec![Value::int(3)]));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn cached_hashes_match_direct_hashing() {
        let mut p = ValuePool::new();
        let v = Value::text("swiss-prot");
        let id = p.intern(&v);
        assert_eq!(p.hash_of(id), value_hash(&v));
        let row = [id, id];
        assert_eq!(
            p.row_hash(&row),
            combine_hashes([value_hash(&v), value_hash(&v)].into_iter())
        );
    }

    #[test]
    fn none_sentinel_is_reserved() {
        assert!(ValueId::NONE.is_none());
        assert!(!ValueId(0).is_none());
    }
}
