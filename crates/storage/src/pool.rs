//! The value intern pool: hash-consed [`Value`]s addressed by dense
//! [`ValueId`]s.
//!
//! The incremental update-exchange workloads of the paper (§6) churn over a
//! small vocabulary of values: the same accession numbers, taxon names and
//! labeled nulls flow through deltas, join probes, duplicate-head checks,
//! provenance rows and wire frames over and over. The pool stores each
//! distinct value **once** and hands out a dense `u32` id; everything
//! downstream (relation rows, join bindings, probe keys, delta sets, codec
//! dictionaries) then moves 4-byte ids instead of enum payloads, and
//! equality between pooled values is a single integer compare.
//!
//! The pool is **append-only between compactions**: ids stay valid until
//! the owner explicitly runs [`ValuePool::compact`], so compiled join plans
//! and cached probe keys never dangle mid-evaluation. Because a workload
//! that churns *distinct* values (the continuous update-exchange setting)
//! would otherwise grow the pool without bound even while every relation
//! stays small, the owning [`crate::Database`] periodically rebuilds the
//! pool from the values its live rows still reference and re-stamps every
//! row with the new dense ids (see [`crate::Database::compact_pool`]) —
//! anything that cached old ids (compiled plans, probe keys) must be
//! invalidated by the caller at that point. The per-value content hash
//! ([`value_hash`]) is computed once at intern time and cached in a dense
//! side array, which is what makes id-keyed row hashing
//! ([`combine_hashes`]) an array walk instead of an enum dispatch.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use crate::fxhash::{FxHasher, IdBuildHasher};
use crate::index::IdVec32;
use crate::value::Value;

/// A dense identifier of an interned [`Value`] inside one [`ValuePool`].
///
/// Ids are pool-local and append-only: once assigned they remain valid (the
/// pool never forgets a value). [`ValueId::NONE`] is reserved as an
/// "unbound" sentinel for the join pipeline and never names a real value.
#[repr(transparent)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

impl ValueId {
    /// Sentinel for "no value": never returned by [`ValuePool::intern`].
    pub const NONE: ValueId = ValueId(u32::MAX);

    /// The dense index this id addresses.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Is this the [`ValueId::NONE`] sentinel?
    #[inline]
    pub fn is_none(self) -> bool {
        self.0 == u32::MAX
    }
}

/// The canonical single-value content hash: the Fx hash of the value. Equal
/// values always hash equally within one process. The pool caches this per
/// id; unpooled values (wire payloads, edit-log tuples) compute it directly.
#[inline]
pub fn value_hash(v: &Value) -> u64 {
    let mut h = FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

/// Combine a sequence of per-value content hashes into one row/bucket hash.
///
/// This is the **shared hashing scheme** of the storage layer: a tuple's
/// content hash, a relation's set-semantics bucket, and a join index bucket
/// are all `combine_hashes` over per-value [`value_hash`]es — so the same
/// bucket is reachable from a `&[Value]` slice (hash each value) *and* from
/// a `&[ValueId]` row (read each cached hash), without the two sides ever
/// agreeing on more than this function.
#[inline]
pub fn combine_hashes(hashes: impl Iterator<Item = u64>) -> u64 {
    let mut h = FxHasher::default();
    for x in hashes {
        h.write_u64(x);
    }
    h.finish()
}

/// Intern-pool hit/miss counters, reported through `EvalStats` and the
/// network `Stats` response.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Intern requests that found the value already pooled.
    pub hits: u64,
    /// Intern requests that had to admit a new value.
    pub misses: u64,
    /// Number of distinct values pooled.
    pub distinct: u64,
    /// Number of [`ValuePool::compact`] passes run over the pool's lifetime.
    pub compactions: u64,
}

impl PoolStats {
    /// Hit rate in `[0, 1]`; 0 when nothing was interned yet (never `NaN`).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// What one [`ValuePool::compact`] pass (or a whole-database
/// [`crate::Database::compact_pool`]) did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolCompaction {
    /// Distinct values pooled before the pass.
    pub before: usize,
    /// Distinct values pooled after the pass (the live vocabulary).
    pub after: usize,
}

impl PoolCompaction {
    /// Dead ids reclaimed by the pass.
    pub fn reclaimed(&self) -> usize {
        self.before.saturating_sub(self.after)
    }
}

/// A hash-consing intern table over [`Value`]s.
#[derive(Debug, Clone, Default)]
pub struct ValuePool {
    /// id → value.
    values: Vec<Value>,
    /// id → cached [`value_hash`].
    hashes: Vec<u64>,
    /// [`value_hash`] → candidate ids (collisions resolved by value compare).
    by_hash: HashMap<u64, IdVec32, IdBuildHasher>,
    hits: u64,
    misses: u64,
    compactions: u64,
}

impl ValuePool {
    /// An empty pool.
    pub fn new() -> Self {
        ValuePool::default()
    }

    /// Number of distinct values pooled.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Is the pool empty?
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Hit/miss counters since construction.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits,
            misses: self.misses,
            distinct: self.values.len() as u64,
            compactions: self.compactions,
        }
    }

    /// The value an id addresses. Ids are append-only, so this is a plain
    /// array index; passing an id from a different pool is a logic error
    /// (caught by the bounds check, not silently misresolved).
    #[inline]
    pub fn value(&self, id: ValueId) -> &Value {
        &self.values[id.index()]
    }

    /// The cached [`value_hash`] of an interned value: an array read, no
    /// enum dispatch.
    #[inline]
    pub fn hash_of(&self, id: ValueId) -> u64 {
        self.hashes[id.index()]
    }

    /// The combined row hash of a `ValueId` slice (see [`combine_hashes`]).
    #[inline]
    pub fn row_hash(&self, row: &[ValueId]) -> u64 {
        combine_hashes(row.iter().map(|&id| self.hashes[id.index()]))
    }

    #[inline]
    fn find(&self, hash: u64, v: &Value) -> Option<ValueId> {
        let bucket = self.by_hash.get(&hash)?;
        bucket
            .as_slice()
            .iter()
            .copied()
            .map(ValueId)
            .find(|&id| self.value(id) == v)
    }

    /// Look a value up without admitting it. `None` means the value has
    /// never been stored anywhere in the owning database — useful as a
    /// negative fast path (an un-pooled value cannot match any stored row).
    #[inline]
    pub fn lookup(&self, v: &Value) -> Option<ValueId> {
        self.find(value_hash(v), v)
    }

    /// Like [`ValuePool::lookup`] with the [`value_hash`] precomputed.
    #[inline]
    pub fn lookup_hashed(&self, hash: u64, v: &Value) -> Option<ValueId> {
        debug_assert_eq!(hash, value_hash(v));
        self.find(hash, v)
    }

    /// Intern a value: return the existing id (hit) or admit a clone of the
    /// value under a fresh dense id (miss).
    #[inline]
    pub fn intern(&mut self, v: &Value) -> ValueId {
        let hash = value_hash(v);
        if let Some(id) = self.find(hash, v) {
            self.hits += 1;
            return id;
        }
        self.admit(hash, v.clone())
    }

    /// Intern an owned value without cloning it on a miss.
    #[inline]
    pub fn intern_owned(&mut self, v: Value) -> ValueId {
        let hash = value_hash(&v);
        if let Some(id) = self.find(hash, &v) {
            self.hits += 1;
            return id;
        }
        self.admit(hash, v)
    }

    fn admit(&mut self, hash: u64, v: Value) -> ValueId {
        self.misses += 1;
        let id = u32::try_from(self.values.len()).expect("value pool exceeds u32 addressing");
        assert_ne!(id, u32::MAX, "value pool exhausted the id space");
        self.values.push(v);
        self.hashes.push(hash);
        self.by_hash.entry(hash).or_default().push(id);
        ValueId(id)
    }

    /// Rebuild the pool keeping only the values whose old id is marked in
    /// `live` (indexed by old id; `live.len()` must equal the pool length).
    ///
    /// Surviving values keep their **relative id order**, so compaction is
    /// deterministic: equal databases compact to equal pools. Returns the
    /// remap table `old id index → new id` ([`ValueId::NONE`] for dropped
    /// values); the caller is responsible for re-stamping every id it
    /// stored (relation row arenas) and invalidating every id it cached
    /// (compiled plans, probe keys) — a stale id after compaction aliases a
    /// *different live value*, not garbage, so nothing would crash.
    ///
    /// Hit/miss counters are cumulative across compactions; the compaction
    /// counter increments.
    pub fn compact(&mut self, live: &[bool]) -> Vec<ValueId> {
        assert_eq!(
            live.len(),
            self.values.len(),
            "live mask must cover the whole pool"
        );
        self.compactions += 1;
        let mut remap = vec![ValueId::NONE; self.values.len()];
        let mut values = Vec::with_capacity(live.iter().filter(|&&l| l).count());
        let mut hashes = Vec::with_capacity(values.capacity());
        let mut by_hash: HashMap<u64, IdVec32, IdBuildHasher> = HashMap::default();
        for (old, (v, h)) in self.values.drain(..).zip(self.hashes.drain(..)).enumerate() {
            if !live[old] {
                continue;
            }
            let id = u32::try_from(values.len()).expect("compacted pool fits u32 addressing");
            remap[old] = ValueId(id);
            by_hash.entry(h).or_default().push(id);
            values.push(v);
            hashes.push(h);
        }
        self.values = values;
        self.hashes = hashes;
        self.by_hash = by_hash;
        remap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::SkolemFnId;

    #[test]
    fn interning_is_hash_consing() {
        let mut p = ValuePool::new();
        let a = p.intern(&Value::int(3));
        let b = p.intern(&Value::text("x"));
        let a2 = p.intern(&Value::int(3));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(p.len(), 2);
        assert_eq!(p.value(a), &Value::int(3));
        assert_eq!(p.value(b), &Value::text("x"));
        let s = p.stats();
        assert_eq!((s.hits, s.misses, s.distinct), (1, 2, 2));
        assert!(s.hit_rate() > 0.3 && s.hit_rate() < 0.4);
    }

    #[test]
    fn lookup_does_not_admit() {
        let mut p = ValuePool::new();
        assert_eq!(p.lookup(&Value::int(9)), None);
        let id = p.intern_owned(Value::int(9));
        assert_eq!(p.lookup(&Value::int(9)), Some(id));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn labeled_nulls_intern_structurally() {
        let mut p = ValuePool::new();
        let a = p.intern_owned(Value::labeled_null(SkolemFnId(1), vec![Value::int(2)]));
        let b = p.intern_owned(Value::labeled_null(SkolemFnId(1), vec![Value::int(2)]));
        let c = p.intern_owned(Value::labeled_null(SkolemFnId(1), vec![Value::int(3)]));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn cached_hashes_match_direct_hashing() {
        let mut p = ValuePool::new();
        let v = Value::text("swiss-prot");
        let id = p.intern(&v);
        assert_eq!(p.hash_of(id), value_hash(&v));
        let row = [id, id];
        assert_eq!(
            p.row_hash(&row),
            combine_hashes([value_hash(&v), value_hash(&v)].into_iter())
        );
    }

    #[test]
    fn none_sentinel_is_reserved() {
        assert!(ValueId::NONE.is_none());
        assert!(!ValueId(0).is_none());
    }

    #[test]
    fn hit_rate_is_zero_not_nan_without_lookups() {
        let s = PoolStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert!(!s.hit_rate().is_nan());
        // And the populated case still divides.
        let s = PoolStats {
            hits: 3,
            misses: 1,
            distinct: 1,
            compactions: 0,
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn compact_drops_dead_ids_and_remaps_survivors() {
        let mut p = ValuePool::new();
        let a = p.intern(&Value::int(1));
        let b = p.intern(&Value::text("dead"));
        let c = p.intern(&Value::int(3));
        let mut live = vec![true; p.len()];
        live[b.index()] = false;
        let remap = p.compact(&live);
        assert_eq!(p.len(), 2);
        assert_eq!(p.stats().compactions, 1);
        // Survivors keep relative order and resolve to the same values.
        let a2 = remap[a.index()];
        let c2 = remap[c.index()];
        assert_eq!((a2, c2), (ValueId(0), ValueId(1)));
        assert!(remap[b.index()].is_none());
        assert_eq!(p.value(a2), &Value::int(1));
        assert_eq!(p.value(c2), &Value::int(3));
        // Cached hashes survived the move.
        assert_eq!(p.hash_of(a2), value_hash(&Value::int(1)));
        // The dead value is gone from the intern table; re-interning admits
        // it under a fresh dense id at the end.
        assert_eq!(p.lookup(&Value::text("dead")), None);
        let b2 = p.intern(&Value::text("dead"));
        assert_eq!(b2, ValueId(2));
        // Survivors are found without re-admission.
        assert_eq!(p.lookup(&Value::int(3)), Some(c2));
        assert_eq!(p.intern(&Value::int(1)), a2);
    }

    #[test]
    fn compact_is_deterministic_in_content() {
        let build = |order: &[i64]| {
            let mut p = ValuePool::new();
            for &i in order {
                p.intern(&Value::int(i));
            }
            // Kill the even values.
            let live: Vec<bool> = (0..p.len())
                .map(|i| matches!(p.value(ValueId(i as u32)), Value::Int(v) if v % 2 == 1))
                .collect();
            p.compact(&live);
            (0..p.len())
                .map(|i| p.value(ValueId(i as u32)).clone())
                .collect::<Vec<_>>()
        };
        // Same insertion order → identical compacted pools.
        assert_eq!(build(&[5, 2, 3, 8, 1]), build(&[5, 2, 3, 8, 1]));
        assert_eq!(
            build(&[5, 2, 3, 8, 1]),
            vec![Value::int(5), Value::int(3), Value::int(1)]
        );
    }

    #[test]
    fn compact_of_fully_live_pool_is_identity() {
        let mut p = ValuePool::new();
        let ids: Vec<ValueId> = (0..10).map(|i| p.intern(&Value::int(i))).collect();
        let remap = p.compact(&vec![true; p.len()]);
        for id in ids {
            assert_eq!(remap[id.index()], id);
        }
        assert_eq!(p.len(), 10);
    }

    #[test]
    #[should_panic(expected = "live mask must cover")]
    fn compact_rejects_short_mask() {
        let mut p = ValuePool::new();
        p.intern(&Value::int(1));
        p.compact(&[]);
    }
}
