//! The value model of the CDSS storage layer.
//!
//! Values are either *constants* (integers, strings) or *labeled nulls*.
//! Labeled nulls are the placeholder values introduced by schema mappings
//! with existentially quantified variables (paper §2.1 and §4.1.1). They are
//! represented as **Skolem terms**: an identifier of a Skolem function plus
//! the list of argument values it was applied to. Two labeled nulls are equal
//! if and only if they were produced by the same Skolem function applied to
//! the same arguments — exactly the semantics the paper relies on to build
//! canonical universal solutions with a datalog engine.

use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// An immutable, reference-counted string whose **content hash is computed
/// once at construction** and cached.
///
/// SWISS-PROT style workloads carry wide string payloads through every hash
/// container in the system — relation sets, join indexes, provenance-graph
/// node tables, dedup sets. Without caching, each of those hashes the full
/// string content again; with it, hashing any [`Value::Text`] costs a single
/// `u64` write regardless of length. Equality also gets a constant-time
/// negative fast path (different hashes ⇒ different strings).
///
/// The cache uses a deterministic hasher, so equal contents always cache
/// equal hashes and `Eq`/`Hash` stay consistent.
#[derive(Debug, Clone)]
pub struct Str {
    hash: u64,
    s: Arc<str>,
}

impl Str {
    /// Wrap a string, hashing its content once.
    pub fn new(s: impl Into<Arc<str>>) -> Self {
        let s = s.into();
        let mut h = crate::fxhash::FxHasher::default();
        s.hash(&mut h);
        Str {
            hash: h.finish(),
            s,
        }
    }

    /// The cached content hash.
    pub fn content_hash(&self) -> u64 {
        self.hash
    }

    /// The string content.
    pub fn as_str(&self) -> &str {
        &self.s
    }
}

impl Deref for Str {
    type Target = str;

    fn deref(&self) -> &str {
        &self.s
    }
}

impl AsRef<str> for Str {
    fn as_ref(&self) -> &str {
        &self.s
    }
}

impl From<&str> for Str {
    fn from(s: &str) -> Self {
        Str::new(s)
    }
}

impl PartialEq for Str {
    fn eq(&self, other: &Self) -> bool {
        // Hash inequality proves content inequality without touching the
        // string bytes; pointer equality proves equality the same way.
        self.hash == other.hash && (Arc::ptr_eq(&self.s, &other.s) || self.s == other.s)
    }
}

impl Eq for Str {}

impl PartialOrd for Str {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Str {
    fn cmp(&self, other: &Self) -> Ordering {
        self.s.cmp(&other.s)
    }
}

impl Hash for Str {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl fmt::Display for Str {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.s)
    }
}

/// Identifier of a Skolem function.
///
/// The mapping compiler (in `orchestra-mappings`) allocates one Skolem
/// function per existentially quantified variable per tgd, following §4.1.1
/// of the paper ("it is essential to use a separate Skolem function for each
/// existentially quantified variable in each tgd").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SkolemFnId(pub u32);

impl fmt::Display for SkolemFnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A labeled null: a Skolem function applied to argument values.
///
/// Labeled nulls are internal bookkeeping; queries may join on their
/// equality, but tuples containing labeled nulls are discarded when
/// producing *certain answers* (paper §2.1).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SkolemValue {
    /// The Skolem function that produced this placeholder.
    pub function: SkolemFnId,
    /// The arguments the function was applied to (the tgd's frontier
    /// variables' values for this instantiation).
    pub args: Vec<Value>,
}

impl SkolemValue {
    /// Create a new Skolem value from a function id and its arguments.
    pub fn new(function: SkolemFnId, args: Vec<Value>) -> Self {
        SkolemValue { function, args }
    }

    /// Depth of nesting of Skolem terms inside this value. A labeled null
    /// whose arguments are all constants has depth 1.
    pub fn depth(&self) -> usize {
        1 + self.args.iter().map(Value::skolem_depth).max().unwrap_or(0)
    }
}

impl fmt::Display for SkolemValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.function)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// A single attribute value stored in a relation.
///
/// The variants cover everything the ORCHESTRA evaluation needs: 64-bit
/// integers (the "integer" dataset, where large SWISS-PROT strings are
/// replaced by hashes), interned strings (the "string" dataset), and labeled
/// nulls ([`SkolemValue`]) for incomplete information.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// A 64-bit integer constant.
    Int(i64),
    /// A string constant. Stored behind an `Arc` (so that wide SWISS-PROT
    /// style tuples can be copied between peer instances cheaply) with its
    /// content hash cached at construction (so that hash containers never
    /// re-hash string payloads — see [`Str`]).
    Text(Str),
    /// A labeled null (Skolem term) standing for an unknown value.
    Null(Arc<SkolemValue>),
}

impl Value {
    /// Construct an integer value.
    pub fn int(v: i64) -> Self {
        Value::Int(v)
    }

    /// Construct a string value.
    pub fn text(v: impl Into<String>) -> Self {
        Value::Text(Str::new(v.into().as_str()))
    }

    /// Construct a labeled null from a Skolem function applied to arguments.
    pub fn labeled_null(function: SkolemFnId, args: Vec<Value>) -> Self {
        Value::Null(Arc::new(SkolemValue::new(function, args)))
    }

    /// Is this value a labeled null (or does it contain one nested inside)?
    pub fn is_labeled_null(&self) -> bool {
        matches!(self, Value::Null(_))
    }

    /// True if this value is a constant (not a labeled null).
    pub fn is_constant(&self) -> bool {
        !self.is_labeled_null()
    }

    /// Nesting depth of Skolem terms; 0 for constants.
    pub fn skolem_depth(&self) -> usize {
        match self {
            Value::Null(s) => s.depth(),
            _ => 0,
        }
    }

    /// The integer payload if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The string payload if this is a [`Value::Text`].
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// The Skolem payload if this is a labeled null.
    pub fn as_skolem(&self) -> Option<&SkolemValue> {
        match self {
            Value::Null(s) => Some(s),
            _ => None,
        }
    }

    /// Approximate number of heap + inline bytes occupied by this value.
    /// Used to reproduce the "DB size" series of Figure 6.
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Int(_) => 8,
            Value::Text(s) => 16 + s.len(),
            Value::Null(s) => 16 + s.args.iter().map(Value::size_bytes).sum::<usize>() + 4,
        }
    }

    /// Render the value as it would appear in a paper-style listing: plain
    /// integers and strings, `f<k>(..)` for labeled nulls.
    pub fn display_compact(&self) -> Cow<'_, str> {
        match self {
            Value::Int(v) => Cow::Owned(v.to_string()),
            Value::Text(s) => Cow::Borrowed(&**s),
            Value::Null(s) => Cow::Owned(s.to_string()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::text(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::text(v)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Text(a), Value::Text(b)) => a == b,
            (Value::Null(a), Value::Null(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(v) => {
                0u8.hash(state);
                v.hash(state);
            }
            Value::Text(s) => {
                1u8.hash(state);
                s.hash(state);
            }
            Value::Null(s) => {
                2u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order over values: integers < strings < labeled nulls, with
    /// the natural order inside each class. The order is only used to make
    /// output listings deterministic; the CDSS semantics never depends on it.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Text(a), Text(b)) => a.cmp(b),
            (Null(a), Null(b)) => a.cmp(b),
            (Int(_), _) => Ordering::Less,
            (_, Int(_)) => Ordering::Greater,
            (Text(_), _) => Ordering::Less,
            (_, Text(_)) => Ordering::Greater,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Null(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn int_and_text_equality() {
        assert_eq!(Value::int(3), Value::int(3));
        assert_ne!(Value::int(3), Value::int(4));
        assert_eq!(Value::text("abc"), Value::text("abc"));
        assert_ne!(Value::text("abc"), Value::int(3));
    }

    #[test]
    fn labeled_null_equality_is_structural() {
        // Two placeholders are the same iff same Skolem function applied to
        // the same arguments (paper §4.1.1).
        let a = Value::labeled_null(SkolemFnId(1), vec![Value::int(2)]);
        let b = Value::labeled_null(SkolemFnId(1), vec![Value::int(2)]);
        let c = Value::labeled_null(SkolemFnId(1), vec![Value::int(3)]);
        let d = Value::labeled_null(SkolemFnId(2), vec![Value::int(2)]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn labeled_nulls_nest() {
        let inner = Value::labeled_null(SkolemFnId(1), vec![Value::int(1)]);
        let outer = Value::labeled_null(SkolemFnId(2), vec![inner.clone()]);
        assert_eq!(outer.skolem_depth(), 2);
        assert_eq!(inner.skolem_depth(), 1);
        assert_eq!(Value::int(9).skolem_depth(), 0);
    }

    #[test]
    fn hashing_is_consistent_with_equality() {
        let mut set = HashSet::new();
        set.insert(Value::labeled_null(SkolemFnId(7), vec![Value::text("x")]));
        assert!(set.contains(&Value::labeled_null(SkolemFnId(7), vec![Value::text("x")])));
        assert!(!set.contains(&Value::labeled_null(SkolemFnId(7), vec![Value::text("y")])));
    }

    #[test]
    fn ordering_is_total_and_groups_by_kind() {
        let mut vs = [
            Value::labeled_null(SkolemFnId(0), vec![]),
            Value::text("b"),
            Value::int(10),
            Value::text("a"),
            Value::int(-3),
        ];
        vs.sort();
        assert_eq!(vs[0], Value::int(-3));
        assert_eq!(vs[1], Value::int(10));
        assert_eq!(vs[2], Value::text("a"));
        assert_eq!(vs[3], Value::text("b"));
        assert!(vs[4].is_labeled_null());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::int(42).to_string(), "42");
        assert_eq!(Value::text("taxon").to_string(), "taxon");
        let null = Value::labeled_null(SkolemFnId(3), vec![Value::int(5), Value::text("x")]);
        assert_eq!(null.to_string(), "f3(5,x)");
    }

    #[test]
    fn size_accounting_counts_string_payload() {
        assert_eq!(Value::int(1).size_bytes(), 8);
        assert!(Value::text("0123456789").size_bytes() >= 10);
        let null = Value::labeled_null(SkolemFnId(3), vec![Value::text("0123456789")]);
        assert!(null.size_bytes() > Value::text("0123456789").size_bytes());
    }

    #[test]
    fn conversions_from_primitives() {
        let v: Value = 7i64.into();
        assert_eq!(v, Value::int(7));
        let v: Value = "hello".into();
        assert_eq!(v, Value::text("hello"));
        let v: Value = String::from("hello").into();
        assert_eq!(v, Value::text("hello"));
        let v: Value = 5i32.into();
        assert_eq!(v, Value::int(5));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::int(3).as_int(), Some(3));
        assert_eq!(Value::int(3).as_text(), None);
        assert_eq!(Value::text("t").as_text(), Some("t"));
        assert!(Value::labeled_null(SkolemFnId(0), vec![])
            .as_skolem()
            .is_some());
        assert!(Value::int(0).as_skolem().is_none());
        assert!(Value::int(0).is_constant());
        assert!(!Value::labeled_null(SkolemFnId(0), vec![]).is_constant());
    }
}
