//! ID-addressed hash indexes over column subsets of a relation.
//!
//! The Tukwila-style pipelined execution backend (paper §5.2) relies on
//! being able to probe a relation by a bound subset of its columns while
//! joining rule bodies; the DB2-style batch backend builds the same indexes
//! lazily per rule application. Both are served by [`HashIndex`].
//!
//! The index is deliberately **zero-copy**: it never stores tuples or even
//! projected key values. Each entry maps the *hash* of a tuple's projection
//! onto the indexed columns (computed in place, no `Vec<Value>` key is ever
//! materialised) to a small inline vector of [`TupleId`]s addressing the
//! owning relation's tuple slab. A probe therefore returns candidate ids
//! whose projection *hash* matches; because distinct keys can collide on the
//! hash, **callers must re-verify the bound columns against each candidate
//! tuple** (the join pipeline does this anyway, so verification is free).

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, Hasher};

use crate::fxhash::{FxBuildHasher, IdBuildHasher};

use crate::tuple::Tuple;
use crate::value::Value;

/// A stable identifier of a tuple inside one [`crate::Relation`]'s slab (or,
/// for throwaway delta indexes, an offset into a delta slice).
///
/// Ids are relation-local: they are assigned on insertion, stay valid until
/// the tuple is removed, and may be reused afterwards. They are `u32` so id
/// buckets pack four ids into the space of a single `Tuple` handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleId(pub u32);

impl TupleId {
    /// Build an id from a slab/slice offset.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        TupleId(u32::try_from(i).expect("relation slab exceeds u32 addressing"))
    }

    /// The slab/slice offset this id addresses.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// How many ids an [`IdVec`] stores inline before spilling to the heap.
const IDVEC_INLINE: usize = 4;

/// A small-vector of [`TupleId`]s: up to [`IDVEC_INLINE`] ids inline, then a
/// heap `Vec`. Join keys are usually close to unique, so the inline form
/// covers almost every bucket without a per-bucket heap allocation.
#[derive(Debug, Clone)]
pub enum IdVec {
    /// Up to `IDVEC_INLINE` ids stored inline.
    Inline {
        /// Number of occupied slots.
        len: u8,
        /// Id storage; slots at `len..` are meaningless.
        ids: [TupleId; IDVEC_INLINE],
    },
    /// Spilled to the heap.
    Heap(Vec<TupleId>),
}

impl Default for IdVec {
    fn default() -> Self {
        IdVec::Inline {
            len: 0,
            ids: [TupleId(0); IDVEC_INLINE],
        }
    }
}

impl IdVec {
    /// Number of stored ids.
    pub fn len(&self) -> usize {
        match self {
            IdVec::Inline { len, .. } => *len as usize,
            IdVec::Heap(v) => v.len(),
        }
    }

    /// True when no ids are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The stored ids as a slice.
    pub fn as_slice(&self) -> &[TupleId] {
        match self {
            IdVec::Inline { len, ids } => &ids[..*len as usize],
            IdVec::Heap(v) => v,
        }
    }

    /// Append an id, spilling to the heap when the inline capacity is full.
    pub fn push(&mut self, id: TupleId) {
        match self {
            IdVec::Inline { len, ids } => {
                if (*len as usize) < IDVEC_INLINE {
                    ids[*len as usize] = id;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(IDVEC_INLINE * 2);
                    v.extend_from_slice(&ids[..]);
                    v.push(id);
                    *self = IdVec::Heap(v);
                }
            }
            IdVec::Heap(v) => v.push(id),
        }
    }

    /// Remove one occurrence of `id` (order is not preserved). Returns true
    /// if it was present.
    pub fn swap_remove_id(&mut self, id: TupleId) -> bool {
        match self {
            IdVec::Inline { len, ids } => {
                let n = *len as usize;
                if let Some(pos) = ids[..n].iter().position(|&x| x == id) {
                    ids[pos] = ids[n - 1];
                    *len -= 1;
                    true
                } else {
                    false
                }
            }
            IdVec::Heap(v) => {
                if let Some(pos) = v.iter().position(|&x| x == id) {
                    v.swap_remove(pos);
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// A hash index mapping the in-place hash of a tuple's projection onto a
/// fixed set of column positions to the ids of tuples with that projection
/// hash. See the module docs for the collision contract.
#[derive(Debug, Clone)]
pub struct HashIndex {
    columns: Vec<usize>,
    hasher: FxBuildHasher,
    map: HashMap<u64, IdVec, IdBuildHasher>,
    len: usize,
}

impl Default for HashIndex {
    fn default() -> Self {
        HashIndex::new(Vec::new())
    }
}

impl HashIndex {
    /// Create an empty index over the given column positions.
    pub fn new(columns: Vec<usize>) -> Self {
        HashIndex {
            columns,
            hasher: FxBuildHasher::default(),
            map: HashMap::default(),
            len: 0,
        }
    }

    /// Build an index over the given columns from `(id, tuple)` pairs.
    pub fn build_from<'a>(
        columns: Vec<usize>,
        entries: impl IntoIterator<Item = (TupleId, &'a Tuple)>,
    ) -> Self {
        let mut idx = HashIndex::new(columns);
        for (id, t) in entries {
            idx.insert(id, t);
        }
        idx
    }

    /// The column positions this index is keyed on.
    pub fn columns(&self) -> &[usize] {
        &self.columns
    }

    /// Number of indexed ids.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no ids are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct hash buckets (equals the number of distinct keys
    /// up to hash collisions).
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Hash a sequence of values with this index's hasher. The projection of
    /// a tuple and a caller-assembled probe key hash identically as long as
    /// they yield equal values in the same order.
    fn hash_values<'v>(&self, vals: impl Iterator<Item = &'v Value>) -> u64 {
        let mut h = self.hasher.build_hasher();
        for v in vals {
            v.hash(&mut h);
        }
        h.finish()
    }

    /// The bucket hash of a tuple's projection onto the indexed columns,
    /// computed in place (no key is materialised).
    #[inline]
    pub fn hash_of(&self, tuple: &Tuple) -> u64 {
        self.hash_values(self.columns.iter().map(|&c| &tuple[c]))
    }

    /// Insert a tuple's id into the index.
    pub fn insert(&mut self, id: TupleId, tuple: &Tuple) {
        let h = self.hash_of(tuple);
        self.map.entry(h).or_default().push(id);
        self.len += 1;
    }

    /// Remove a tuple's id from the index. Returns true if the id was
    /// present; `len` only shrinks when it actually was (so a double-remove
    /// cannot underflow the bookkeeping).
    pub fn remove(&mut self, id: TupleId, tuple: &Tuple) -> bool {
        let h = self.hash_of(tuple);
        let Some(bucket) = self.map.get_mut(&h) else {
            return false;
        };
        let removed = bucket.swap_remove_id(id);
        if removed {
            self.len -= 1;
            if bucket.is_empty() {
                self.map.remove(&h);
            }
        }
        removed
    }

    /// Ids of tuples whose projection onto the indexed columns *hashes* like
    /// `key`. Callers must verify the bound columns against each candidate —
    /// distinct keys can share a bucket.
    pub fn probe_ids(&self, key: &[Value]) -> &[TupleId] {
        let h = self.hash_values(key.iter());
        self.map.get(&h).map(IdVec::as_slice).unwrap_or(&[])
    }

    /// Like [`HashIndex::probe_ids`] but for a key assembled from borrowed
    /// values (the join pipeline's scratch key holds `&Value`s).
    pub fn probe_ids_ref(&self, key: &[&Value]) -> &[TupleId] {
        let h = self.hash_values(key.iter().copied());
        self.map.get(&h).map(IdVec::as_slice).unwrap_or(&[])
    }

    /// Drop all entries, keeping the column specification.
    pub fn clear(&mut self) {
        self.map.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::int_tuple;

    fn ids(tuples: &[Tuple]) -> impl Iterator<Item = (TupleId, &Tuple)> {
        tuples
            .iter()
            .enumerate()
            .map(|(i, t)| (TupleId::from_index(i), t))
    }

    /// Probe and verify, as real callers must.
    fn probe_verified<'a>(idx: &HashIndex, tuples: &'a [Tuple], key: &[Value]) -> Vec<&'a Tuple> {
        idx.probe_ids(key)
            .iter()
            .map(|id| &tuples[id.index()])
            .filter(|t| idx.columns().iter().zip(key).all(|(&c, v)| &t[c] == v))
            .collect()
    }

    #[test]
    fn build_and_probe() {
        let tuples = [
            int_tuple(&[1, 10]),
            int_tuple(&[1, 20]),
            int_tuple(&[2, 30]),
        ];
        let idx = HashIndex::build_from(vec![0], ids(&tuples));
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.distinct_keys(), 2);
        assert_eq!(probe_verified(&idx, &tuples, &[Value::int(1)]).len(), 2);
        assert_eq!(probe_verified(&idx, &tuples, &[Value::int(2)]).len(), 1);
        assert_eq!(probe_verified(&idx, &tuples, &[Value::int(3)]).len(), 0);
        assert_eq!(idx.columns(), &[0]);
    }

    #[test]
    fn multi_column_keys() {
        let tuples = [int_tuple(&[1, 10, 5]), int_tuple(&[1, 20, 5])];
        let idx = HashIndex::build_from(vec![0, 2], ids(&tuples));
        let k = [Value::int(1), Value::int(5)];
        assert_eq!(probe_verified(&idx, &tuples, &k).len(), 2);
        let k = [Value::int(1), Value::int(10)];
        assert_eq!(probe_verified(&idx, &tuples, &k).len(), 0);
    }

    #[test]
    fn probe_by_ref_key_agrees_with_owned_key() {
        let tuples = [int_tuple(&[7, 1]), int_tuple(&[7, 2]), int_tuple(&[8, 3])];
        let idx = HashIndex::build_from(vec![0], ids(&tuples));
        let owned = [Value::int(7)];
        let refs: Vec<&Value> = owned.iter().collect();
        assert_eq!(idx.probe_ids(&owned), idx.probe_ids_ref(&refs));
        assert_eq!(idx.probe_ids(&owned).len(), 2);
    }

    #[test]
    fn insert_and_remove_keep_len_consistent() {
        let t1 = int_tuple(&[7, 1]);
        let t2 = int_tuple(&[7, 2]);
        let mut idx = HashIndex::new(vec![0]);
        idx.insert(TupleId(0), &t1);
        idx.insert(TupleId(1), &t2);
        assert_eq!(idx.len(), 2);
        assert!(idx.remove(TupleId(0), &t1));
        // Double-remove of the same id must not disturb the bookkeeping.
        assert!(!idx.remove(TupleId(0), &t1));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.probe_ids(&[Value::int(7)]), &[TupleId(1)]);
        idx.clear();
        assert!(idx.is_empty());
        assert_eq!(idx.distinct_keys(), 0);
    }

    #[test]
    fn remove_with_wrong_tuple_for_id_is_a_noop() {
        // The id is present but under a different key's bucket: the remove
        // must not find it (and must not corrupt `len`).
        let t1 = int_tuple(&[7, 1]);
        let other = int_tuple(&[9, 9]);
        let mut idx = HashIndex::new(vec![0]);
        idx.insert(TupleId(0), &t1);
        assert!(!idx.remove(TupleId(0), &other));
        assert_eq!(idx.len(), 1);
        assert!(idx.remove(TupleId(0), &t1));
        assert_eq!(idx.len(), 0);
    }

    #[test]
    fn rebuild_matches_incremental_maintenance() {
        let tuples: Vec<Tuple> = (0..50).map(|i| int_tuple(&[i % 7, i])).collect();
        let built = HashIndex::build_from(vec![0], ids(&tuples));
        let mut maintained = HashIndex::new(vec![0]);
        for (id, t) in ids(&tuples) {
            maintained.insert(id, t);
        }
        assert_eq!(built.len(), maintained.len());
        for k in 0..7 {
            let key = [Value::int(k)];
            let mut a: Vec<TupleId> = built.probe_ids(&key).to_vec();
            let mut b: Vec<TupleId> = maintained.probe_ids(&key).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            // Same hasher instance? No — different RandomState per index, but
            // the *verified* candidate sets must agree.
            let va = probe_verified(&built, &tuples, &key).len();
            let vb = probe_verified(&maintained, &tuples, &key).len();
            assert_eq!(va, vb);
            assert!(!a.is_empty() && !b.is_empty());
        }
    }

    #[test]
    fn len_is_sum_of_bucket_lens_under_churn() {
        let tuples: Vec<Tuple> = (0..40).map(|i| int_tuple(&[i % 5, i])).collect();
        let mut idx = HashIndex::new(vec![0]);
        for (id, t) in ids(&tuples) {
            idx.insert(id, t);
        }
        // Remove every third tuple, then re-add half of those.
        for (i, t) in tuples.iter().enumerate().filter(|(i, _)| i % 3 == 0) {
            assert!(idx.remove(TupleId::from_index(i), t));
        }
        for (i, t) in tuples.iter().enumerate().filter(|(i, _)| i % 6 == 0) {
            idx.insert(TupleId::from_index(i), t);
        }
        let bucket_sum: usize = (0..5)
            .map(|k| probe_verified(&idx, &tuples, &[Value::int(k)]).len())
            .sum();
        assert_eq!(idx.len(), bucket_sum);
    }

    #[test]
    fn idvec_inline_to_heap_transition() {
        let mut v = IdVec::default();
        assert!(v.is_empty());
        for i in 0..10u32 {
            v.push(TupleId(i));
            assert_eq!(v.len(), i as usize + 1);
        }
        assert!(matches!(v, IdVec::Heap(_)));
        assert_eq!(v.as_slice().len(), 10);
        assert!(v.swap_remove_id(TupleId(3)));
        assert!(!v.swap_remove_id(TupleId(3)));
        assert_eq!(v.len(), 9);

        // Inline removal shuffles but keeps the set.
        let mut v = IdVec::default();
        for i in 0..4u32 {
            v.push(TupleId(i));
        }
        assert!(v.swap_remove_id(TupleId(0)));
        let mut s: Vec<u32> = v.as_slice().iter().map(|t| t.0).collect();
        s.sort_unstable();
        assert_eq!(s, vec![1, 2, 3]);
    }

    #[test]
    fn empty_key_indexes_everything_together() {
        // A zero-column index is a degenerate "scan bucket"; it must still work
        // because rules with no bound columns fall back to it.
        let tuples = [int_tuple(&[1]), int_tuple(&[2])];
        let idx = HashIndex::build_from(vec![], ids(&tuples));
        assert_eq!(idx.probe_ids(&[]).len(), 2);
    }
}
