//! ID-addressed hash indexes over column subsets of a relation.
//!
//! The Tukwila-style pipelined execution backend (paper §5.2) relies on
//! being able to probe a relation by a bound subset of its columns while
//! joining rule bodies; the DB2-style batch backend builds the same indexes
//! lazily per rule application. Both are served by [`HashIndex`].
//!
//! The index is deliberately **zero-copy**: it never stores tuples or even
//! projected key values. Each entry maps the *bucket hash* of a tuple's
//! projection onto the indexed columns to a small inline vector of
//! [`TupleId`]s addressing the owning relation's tuple slab.
//!
//! The bucket hash uses the storage layer's **shared hashing scheme**
//! ([`combine_hashes`](crate::pool::combine_hashes) over per-column
//! [`value_hash`](crate::pool::value_hash)es), so the same bucket is
//! reachable from three kinds of keys without translation:
//!
//! * a `&[Value]` / `&[&Value]` probe key (hash each value) — the legacy
//!   value pipeline and ad-hoc selections;
//! * a `&[ValueId]` probe key plus the owning [`ValuePool`] (read each
//!   cached hash) — the interned join pipeline's fast path;
//! * a precombined `u64` via [`HashIndex::probe_hash`] when the caller
//!   already folded the key.
//!
//! A probe returns candidate ids whose projection *hash* matches; because
//! distinct keys can collide on the hash, **callers must re-verify the
//! bound columns against each candidate tuple** (the join pipeline does
//! this anyway, so verification is free).

use std::collections::HashMap;

use crate::fxhash::IdBuildHasher;
use crate::pool::{combine_hashes, value_hash, ValueId, ValuePool};
use crate::tuple::Tuple;
use crate::value::Value;

/// A stable identifier of a tuple inside one [`crate::Relation`]'s slab (or,
/// for throwaway delta indexes, an offset into a delta slice).
///
/// Ids are relation-local: they are assigned on insertion, stay valid until
/// the tuple is removed, and may be reused afterwards. They are `u32` so id
/// buckets pack four ids into the space of a single `Tuple` handle.
///
/// `#[repr(transparent)]`: a `&[u32]` of raw ids and a `&[TupleId]` have
/// identical layout, which [`IdVec`] relies on to share its storage with
/// the untyped [`IdVec32`].
#[repr(transparent)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleId(pub u32);

impl TupleId {
    /// Build an id from a slab/slice offset.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        TupleId(u32::try_from(i).expect("relation slab exceeds u32 addressing"))
    }

    /// The slab/slice offset this id addresses.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// How many ids an [`IdVec`] stores inline before spilling to the heap.
const IDVEC_INLINE: usize = 4;

/// A small-vector of raw `u32` ids: up to [`IDVEC_INLINE`] inline, then a
/// heap `Vec`. Bucket keys are usually close to unique, so the inline form
/// covers almost every bucket without a per-bucket heap allocation. Used
/// for [`TupleId`] buckets (via [`IdVec`]) and [`crate::pool::ValuePool`]
/// hash buckets alike.
#[derive(Debug, Clone)]
pub enum IdVec32 {
    /// Up to `IDVEC_INLINE` ids stored inline.
    Inline {
        /// Number of occupied slots.
        len: u8,
        /// Id storage; slots at `len..` are meaningless.
        ids: [u32; IDVEC_INLINE],
    },
    /// Spilled to the heap.
    Heap(Vec<u32>),
}

impl Default for IdVec32 {
    fn default() -> Self {
        IdVec32::Inline {
            len: 0,
            ids: [0; IDVEC_INLINE],
        }
    }
}

impl IdVec32 {
    /// Number of stored ids.
    pub fn len(&self) -> usize {
        match self {
            IdVec32::Inline { len, .. } => *len as usize,
            IdVec32::Heap(v) => v.len(),
        }
    }

    /// True when no ids are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The stored ids as a slice.
    pub fn as_slice(&self) -> &[u32] {
        match self {
            IdVec32::Inline { len, ids } => &ids[..*len as usize],
            IdVec32::Heap(v) => v,
        }
    }

    /// Append an id, spilling to the heap when the inline capacity is full.
    pub fn push(&mut self, id: u32) {
        match self {
            IdVec32::Inline { len, ids } => {
                if (*len as usize) < IDVEC_INLINE {
                    ids[*len as usize] = id;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(IDVEC_INLINE * 2);
                    v.extend_from_slice(&ids[..]);
                    v.push(id);
                    *self = IdVec32::Heap(v);
                }
            }
            IdVec32::Heap(v) => v.push(id),
        }
    }

    /// Remove one occurrence of `id` (order is not preserved). Returns true
    /// if it was present.
    pub fn swap_remove_id(&mut self, id: u32) -> bool {
        match self {
            IdVec32::Inline { len, ids } => {
                let n = *len as usize;
                if let Some(pos) = ids[..n].iter().position(|&x| x == id) {
                    ids[pos] = ids[n - 1];
                    *len -= 1;
                    true
                } else {
                    false
                }
            }
            IdVec32::Heap(v) => {
                if let Some(pos) = v.iter().position(|&x| x == id) {
                    v.swap_remove(pos);
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// A small-vector of [`TupleId`]s (see [`IdVec32`]).
#[derive(Debug, Clone, Default)]
pub struct IdVec(IdVec32);

impl IdVec {
    /// Number of stored ids.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when no ids are stored.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The stored ids as a slice.
    pub fn as_slice(&self) -> &[TupleId] {
        let raw = self.0.as_slice();
        // SAFETY: TupleId is #[repr(transparent)] over u32, so the slice
        // layouts are identical.
        unsafe { std::slice::from_raw_parts(raw.as_ptr().cast::<TupleId>(), raw.len()) }
    }

    /// Append an id, spilling to the heap when the inline capacity is full.
    pub fn push(&mut self, id: TupleId) {
        self.0.push(id.0);
    }

    /// Remove one occurrence of `id` (order is not preserved). Returns true
    /// if it was present.
    pub fn swap_remove_id(&mut self, id: TupleId) -> bool {
        self.0.swap_remove_id(id.0)
    }
}

/// A hash index mapping the bucket hash of a tuple's projection onto a
/// fixed set of column positions to the ids of tuples with that projection
/// hash. See the module docs for the hashing scheme and collision contract.
#[derive(Debug, Clone)]
pub struct HashIndex {
    columns: Vec<usize>,
    map: HashMap<u64, IdVec, IdBuildHasher>,
    len: usize,
}

impl Default for HashIndex {
    fn default() -> Self {
        HashIndex::new(Vec::new())
    }
}

impl HashIndex {
    /// Create an empty index over the given column positions.
    pub fn new(columns: Vec<usize>) -> Self {
        HashIndex::with_capacity(columns, 0)
    }

    /// Create an empty index with bucket capacity reserved for roughly
    /// `capacity` entries — throwaway per-application indexes (batch
    /// backend, large delta sets) know their size up front and skip the
    /// rehash-doubling cascade this way.
    pub fn with_capacity(columns: Vec<usize>, capacity: usize) -> Self {
        HashIndex {
            columns,
            map: HashMap::with_capacity_and_hasher(capacity, IdBuildHasher::default()),
            len: 0,
        }
    }

    /// Build an index over the given columns from `(id, tuple)` pairs.
    pub fn build_from<'a>(
        columns: Vec<usize>,
        entries: impl IntoIterator<Item = (TupleId, &'a Tuple)>,
    ) -> Self {
        let entries = entries.into_iter();
        let mut idx = HashIndex::with_capacity(columns, entries.size_hint().0);
        for (id, t) in entries {
            idx.insert(id, t);
        }
        idx
    }

    /// Build an index over the given columns from `(id, row)` pairs of
    /// interned rows, reading cached hashes from the pool. `capacity` is
    /// the (approximate) number of entries, reserved up front.
    pub fn build_from_rows<'a>(
        columns: Vec<usize>,
        capacity: usize,
        entries: impl IntoIterator<Item = (TupleId, &'a [ValueId])>,
        pool: &ValuePool,
    ) -> Self {
        let mut idx = HashIndex::with_capacity(columns, capacity);
        for (id, row) in entries {
            idx.insert_row(id, row, pool);
        }
        idx
    }

    /// The column positions this index is keyed on.
    pub fn columns(&self) -> &[usize] {
        &self.columns
    }

    /// Number of indexed ids.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no ids are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct hash buckets (equals the number of distinct keys
    /// up to hash collisions).
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// The bucket hash of a tuple's projection onto the indexed columns,
    /// computed in place (no key is materialised).
    #[inline]
    pub fn hash_of(&self, tuple: &Tuple) -> u64 {
        combine_hashes(self.columns.iter().map(|&c| value_hash(&tuple[c])))
    }

    /// The bucket hash of an interned row's projection, read from the
    /// pool's cached per-value hashes — an array walk, no enum dispatch.
    #[inline]
    pub fn hash_of_row(&self, row: &[ValueId], pool: &ValuePool) -> u64 {
        combine_hashes(self.columns.iter().map(|&c| pool.hash_of(row[c])))
    }

    /// Insert a tuple's id into the index, hashing the projected values.
    pub fn insert(&mut self, id: TupleId, tuple: &Tuple) {
        let h = self.hash_of(tuple);
        self.map.entry(h).or_default().push(id);
        self.len += 1;
    }

    /// Insert an interned row's id into the index via cached hashes.
    pub fn insert_row(&mut self, id: TupleId, row: &[ValueId], pool: &ValuePool) {
        let h = self.hash_of_row(row, pool);
        self.map.entry(h).or_default().push(id);
        self.len += 1;
    }

    /// Remove a tuple's id from the index. Returns true if the id was
    /// present; `len` only shrinks when it actually was (so a double-remove
    /// cannot underflow the bookkeeping).
    pub fn remove(&mut self, id: TupleId, tuple: &Tuple) -> bool {
        let h = self.hash_of(tuple);
        let Some(bucket) = self.map.get_mut(&h) else {
            return false;
        };
        let removed = bucket.swap_remove_id(id);
        if removed {
            self.len -= 1;
            if bucket.is_empty() {
                self.map.remove(&h);
            }
        }
        removed
    }

    /// Ids bucketed under a precombined key hash. The fast path for callers
    /// that fold probe keys themselves (the interned join pipeline).
    #[inline]
    pub fn probe_hash(&self, hash: u64) -> &[TupleId] {
        self.map.get(&hash).map(IdVec::as_slice).unwrap_or(&[])
    }

    /// Ids of tuples whose projection onto the indexed columns *hashes* like
    /// `key`. Callers must verify the bound columns against each candidate —
    /// distinct keys can share a bucket.
    pub fn probe_ids(&self, key: &[Value]) -> &[TupleId] {
        self.probe_hash(combine_hashes(key.iter().map(value_hash)))
    }

    /// Like [`HashIndex::probe_ids`] but for a key assembled from borrowed
    /// values (the legacy join pipeline's scratch key holds `&Value`s).
    pub fn probe_ids_ref(&self, key: &[&Value]) -> &[TupleId] {
        self.probe_hash(combine_hashes(key.iter().map(|v| value_hash(v))))
    }

    /// Like [`HashIndex::probe_ids`] but for an interned key, reading
    /// cached hashes from the pool.
    pub fn probe_row(&self, key: &[ValueId], pool: &ValuePool) -> &[TupleId] {
        self.probe_hash(combine_hashes(key.iter().map(|&id| pool.hash_of(id))))
    }

    /// Drop all entries, keeping the column specification.
    pub fn clear(&mut self) {
        self.map.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::int_tuple;

    fn ids(tuples: &[Tuple]) -> impl Iterator<Item = (TupleId, &Tuple)> {
        tuples
            .iter()
            .enumerate()
            .map(|(i, t)| (TupleId::from_index(i), t))
    }

    /// Probe and verify, as real callers must.
    fn probe_verified<'a>(idx: &HashIndex, tuples: &'a [Tuple], key: &[Value]) -> Vec<&'a Tuple> {
        idx.probe_ids(key)
            .iter()
            .map(|id| &tuples[id.index()])
            .filter(|t| idx.columns().iter().zip(key).all(|(&c, v)| &t[c] == v))
            .collect()
    }

    #[test]
    fn build_and_probe() {
        let tuples = [
            int_tuple(&[1, 10]),
            int_tuple(&[1, 20]),
            int_tuple(&[2, 30]),
        ];
        let idx = HashIndex::build_from(vec![0], ids(&tuples));
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.distinct_keys(), 2);
        assert_eq!(probe_verified(&idx, &tuples, &[Value::int(1)]).len(), 2);
        assert_eq!(probe_verified(&idx, &tuples, &[Value::int(2)]).len(), 1);
        assert_eq!(probe_verified(&idx, &tuples, &[Value::int(3)]).len(), 0);
        assert_eq!(idx.columns(), &[0]);
    }

    #[test]
    fn multi_column_keys() {
        let tuples = [int_tuple(&[1, 10, 5]), int_tuple(&[1, 20, 5])];
        let idx = HashIndex::build_from(vec![0, 2], ids(&tuples));
        let k = [Value::int(1), Value::int(5)];
        assert_eq!(probe_verified(&idx, &tuples, &k).len(), 2);
        let k = [Value::int(1), Value::int(10)];
        assert_eq!(probe_verified(&idx, &tuples, &k).len(), 0);
    }

    #[test]
    fn probe_by_ref_key_agrees_with_owned_key() {
        let tuples = [int_tuple(&[7, 1]), int_tuple(&[7, 2]), int_tuple(&[8, 3])];
        let idx = HashIndex::build_from(vec![0], ids(&tuples));
        let owned = [Value::int(7)];
        let refs: Vec<&Value> = owned.iter().collect();
        assert_eq!(idx.probe_ids(&owned), idx.probe_ids_ref(&refs));
        assert_eq!(idx.probe_ids(&owned).len(), 2);
    }

    #[test]
    fn id_keyed_and_value_keyed_paths_share_buckets() {
        // The same index, maintained from interned rows, must answer value
        // probes — and vice versa.
        let mut pool = ValuePool::new();
        let tuples = [int_tuple(&[7, 1]), int_tuple(&[7, 2]), int_tuple(&[8, 3])];
        let rows: Vec<Vec<ValueId>> = tuples
            .iter()
            .map(|t| t.values().iter().map(|v| pool.intern(v)).collect())
            .collect();
        let idx = HashIndex::build_from_rows(
            vec![0],
            rows.len(),
            rows.iter()
                .enumerate()
                .map(|(i, r)| (TupleId::from_index(i), r.as_slice())),
            &pool,
        );
        // Value probe hits the id-maintained buckets.
        assert_eq!(idx.probe_ids(&[Value::int(7)]).len(), 2);
        // Id probe agrees.
        let key = [pool.intern(&Value::int(7))];
        assert_eq!(idx.probe_row(&key, &pool), idx.probe_ids(&[Value::int(7)]));
        // Hashes agree between the two maintenance paths.
        assert_eq!(idx.hash_of(&tuples[0]), idx.hash_of_row(&rows[0], &pool));
    }

    #[test]
    fn insert_and_remove_keep_len_consistent() {
        let t1 = int_tuple(&[7, 1]);
        let t2 = int_tuple(&[7, 2]);
        let mut idx = HashIndex::new(vec![0]);
        idx.insert(TupleId(0), &t1);
        idx.insert(TupleId(1), &t2);
        assert_eq!(idx.len(), 2);
        assert!(idx.remove(TupleId(0), &t1));
        // Double-remove of the same id must not disturb the bookkeeping.
        assert!(!idx.remove(TupleId(0), &t1));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.probe_ids(&[Value::int(7)]), &[TupleId(1)]);
        idx.clear();
        assert!(idx.is_empty());
        assert_eq!(idx.distinct_keys(), 0);
    }

    #[test]
    fn remove_with_wrong_tuple_for_id_is_a_noop() {
        // The id is present but under a different key's bucket: the remove
        // must not find it (and must not corrupt `len`).
        let t1 = int_tuple(&[7, 1]);
        let other = int_tuple(&[9, 9]);
        let mut idx = HashIndex::new(vec![0]);
        idx.insert(TupleId(0), &t1);
        assert!(!idx.remove(TupleId(0), &other));
        assert_eq!(idx.len(), 1);
        assert!(idx.remove(TupleId(0), &t1));
        assert_eq!(idx.len(), 0);
    }

    #[test]
    fn rebuild_matches_incremental_maintenance() {
        let tuples: Vec<Tuple> = (0..50).map(|i| int_tuple(&[i % 7, i])).collect();
        let built = HashIndex::build_from(vec![0], ids(&tuples));
        let mut maintained = HashIndex::new(vec![0]);
        for (id, t) in ids(&tuples) {
            maintained.insert(id, t);
        }
        assert_eq!(built.len(), maintained.len());
        for k in 0..7 {
            let key = [Value::int(k)];
            let va = probe_verified(&built, &tuples, &key).len();
            let vb = probe_verified(&maintained, &tuples, &key).len();
            assert_eq!(va, vb);
            assert!(va > 0);
        }
    }

    #[test]
    fn len_is_sum_of_bucket_lens_under_churn() {
        let tuples: Vec<Tuple> = (0..40).map(|i| int_tuple(&[i % 5, i])).collect();
        let mut idx = HashIndex::new(vec![0]);
        for (id, t) in ids(&tuples) {
            idx.insert(id, t);
        }
        // Remove every third tuple, then re-add half of those.
        for (i, t) in tuples.iter().enumerate().filter(|(i, _)| i % 3 == 0) {
            assert!(idx.remove(TupleId::from_index(i), t));
        }
        for (i, t) in tuples.iter().enumerate().filter(|(i, _)| i % 6 == 0) {
            idx.insert(TupleId::from_index(i), t);
        }
        let bucket_sum: usize = (0..5)
            .map(|k| probe_verified(&idx, &tuples, &[Value::int(k)]).len())
            .sum();
        assert_eq!(idx.len(), bucket_sum);
    }

    #[test]
    fn idvec_inline_to_heap_transition() {
        let mut v = IdVec::default();
        assert!(v.is_empty());
        for i in 0..10u32 {
            v.push(TupleId(i));
            assert_eq!(v.len(), i as usize + 1);
        }
        assert!(matches!(v, IdVec(IdVec32::Heap(_))));
        assert_eq!(v.as_slice().len(), 10);
        assert!(v.swap_remove_id(TupleId(3)));
        assert!(!v.swap_remove_id(TupleId(3)));
        assert_eq!(v.len(), 9);

        // Inline removal shuffles but keeps the set.
        let mut v = IdVec::default();
        for i in 0..4u32 {
            v.push(TupleId(i));
        }
        assert!(v.swap_remove_id(TupleId(0)));
        let mut s: Vec<u32> = v.as_slice().iter().map(|t| t.0).collect();
        s.sort_unstable();
        assert_eq!(s, vec![1, 2, 3]);
    }

    #[test]
    fn empty_key_indexes_everything_together() {
        // A zero-column index is a degenerate "scan bucket"; it must still work
        // because rules with no bound columns fall back to it.
        let tuples = [int_tuple(&[1]), int_tuple(&[2])];
        let idx = HashIndex::build_from(vec![], ids(&tuples));
        assert_eq!(idx.probe_ids(&[]).len(), 2);
    }
}
