//! Hash indexes over column subsets of a relation.
//!
//! The Tukwila-style pipelined execution backend (paper §5.2) relies on
//! being able to probe a relation by a bound subset of its columns while
//! joining rule bodies; the DB2-style batch backend builds the same indexes
//! lazily per rule application. Both are served by [`HashIndex`].

use std::collections::HashMap;

use crate::tuple::Tuple;
use crate::value::Value;

/// A hash index mapping a key (the projection of a tuple onto a fixed set of
/// column positions) to the list of tuples with that key.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    columns: Vec<usize>,
    map: HashMap<Vec<Value>, Vec<Tuple>>,
    len: usize,
}

impl HashIndex {
    /// Create an empty index over the given column positions.
    pub fn new(columns: Vec<usize>) -> Self {
        HashIndex {
            columns,
            map: HashMap::new(),
            len: 0,
        }
    }

    /// Build an index over the given columns from an iterator of tuples.
    pub fn build<'a>(columns: Vec<usize>, tuples: impl IntoIterator<Item = &'a Tuple>) -> Self {
        let mut idx = HashIndex::new(columns);
        for t in tuples {
            idx.insert(t.clone());
        }
        idx
    }

    /// The column positions this index is keyed on.
    pub fn columns(&self) -> &[usize] {
        &self.columns
    }

    /// Number of indexed tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no tuples are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct keys in the index.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    fn key_of(&self, tuple: &Tuple) -> Vec<Value> {
        self.columns.iter().map(|&c| tuple[c].clone()).collect()
    }

    /// Insert a tuple into the index.
    pub fn insert(&mut self, tuple: Tuple) {
        let key = self.key_of(&tuple);
        self.map.entry(key).or_default().push(tuple);
        self.len += 1;
    }

    /// Remove one occurrence of a tuple from the index. Returns true if the
    /// tuple was present.
    pub fn remove(&mut self, tuple: &Tuple) -> bool {
        let key = self.key_of(tuple);
        if let Some(bucket) = self.map.get_mut(&key) {
            if let Some(pos) = bucket.iter().position(|t| t == tuple) {
                bucket.swap_remove(pos);
                self.len -= 1;
                if bucket.is_empty() {
                    self.map.remove(&key);
                }
                return true;
            }
        }
        false
    }

    /// All tuples whose projection on the indexed columns equals `key`.
    pub fn probe(&self, key: &[Value]) -> &[Tuple] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterate over all (key, bucket) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<Value>, &Vec<Tuple>)> {
        self.map.iter()
    }

    /// Drop all entries, keeping the column specification.
    pub fn clear(&mut self) {
        self.map.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::int_tuple;

    #[test]
    fn build_and_probe() {
        let tuples = [
            int_tuple(&[1, 10]),
            int_tuple(&[1, 20]),
            int_tuple(&[2, 30]),
        ];
        let idx = HashIndex::build(vec![0], tuples.iter());
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.distinct_keys(), 2);
        assert_eq!(idx.probe(&[Value::int(1)]).len(), 2);
        assert_eq!(idx.probe(&[Value::int(2)]).len(), 1);
        assert_eq!(idx.probe(&[Value::int(3)]).len(), 0);
        assert_eq!(idx.columns(), &[0]);
    }

    #[test]
    fn multi_column_keys() {
        let tuples = [int_tuple(&[1, 10, 5]), int_tuple(&[1, 20, 5])];
        let idx = HashIndex::build(vec![0, 2], tuples.iter());
        assert_eq!(idx.probe(&[Value::int(1), Value::int(5)]).len(), 2);
        assert_eq!(idx.probe(&[Value::int(1), Value::int(10)]).len(), 0);
    }

    #[test]
    fn insert_and_remove() {
        let mut idx = HashIndex::new(vec![0]);
        idx.insert(int_tuple(&[7, 1]));
        idx.insert(int_tuple(&[7, 2]));
        assert!(idx.remove(&int_tuple(&[7, 1])));
        assert!(!idx.remove(&int_tuple(&[7, 1])));
        assert_eq!(idx.probe(&[Value::int(7)]).len(), 1);
        assert_eq!(idx.len(), 1);
        idx.clear();
        assert!(idx.is_empty());
    }

    #[test]
    fn empty_key_indexes_everything_together() {
        // A zero-column index is a degenerate "scan bucket"; it must still work
        // because rules with no bound columns fall back to it.
        let tuples = [int_tuple(&[1]), int_tuple(&[2])];
        let idx = HashIndex::build(vec![], tuples.iter());
        assert_eq!(idx.probe(&[]).len(), 2);
    }
}
