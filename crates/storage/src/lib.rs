//! # orchestra-storage
//!
//! In-memory relational storage substrate for the ORCHESTRA collaborative
//! data sharing system (CDSS), reproducing the storage layer required by
//! *Update Exchange with Mappings and Provenance* (Green, Karvounarakis,
//! Ives, Tannen; VLDB 2007 / UPenn TR MS-CIS-07-26).
//!
//! The paper executes its compiled datalog programs on top of a commercial
//! RDBMS (DB2) and on the Tukwila engine over Berkeley DB. This crate
//! provides the equivalent substrate in pure Rust:
//!
//! * a [`Value`] model including **labeled nulls** represented as Skolem
//!   terms ([`SkolemValue`]), the placeholder values required by mappings
//!   with existential variables (paper §4.1.1);
//! * [`Tuple`]s, [`RelationSchema`]s and in-memory [`Relation`] instances
//!   with hash indexes on arbitrary column subsets;
//! * a [`Database`] catalog mapping relation names to instances;
//! * [`EditLog`]s recording local curation (insertions and deletions) at a
//!   peer, the "source data" of the CDSS (paper §3.1);
//! * size accounting used to reproduce Figure 6 of the evaluation.
//!
//! The crate is deliberately free of any datalog, mapping, or provenance
//! logic: those live in the `orchestra-datalog`, `orchestra-mappings`, and
//! `orchestra-provenance` crates, which are all built on top of this one.
//!
//! ## Quick example
//!
//! ```
//! use orchestra_storage::{Database, RelationSchema, Tuple, Value};
//!
//! let mut db = Database::new();
//! let schema = RelationSchema::new("B", &["id", "nam"]);
//! db.create_relation(schema).unwrap();
//! db.insert("B", Tuple::new(vec![Value::int(3), Value::int(5)])).unwrap();
//! assert_eq!(db.relation("B").unwrap().len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod database;
pub mod editlog;
pub mod error;
pub mod fxhash;
pub mod index;
pub mod pool;
pub mod relation;
pub mod schema;
pub mod stats;
pub mod tuple;
pub mod value;

pub use database::{Database, RelationSource};
pub use editlog::{EditLog, EditOp, EditOpKind};
pub use error::StorageError;
pub use fxhash::{FxBuildHasher, IdBuildHasher};
pub use index::{HashIndex, IdVec, TupleId};
pub use pool::{PoolCompaction, PoolStats, ValueId, ValuePool};
pub use relation::{Relation, RowIter, SelectEqRef, TupleIdIter, TupleIter};
pub use schema::{AttributeName, DataType, RelationName, RelationSchema};
pub use stats::{DatabaseStats, RelationStats};
pub use tuple::Tuple;
pub use value::{SkolemFnId, SkolemValue, Str, Value};

/// Convenience result alias used throughout the storage crate.
pub type Result<T> = std::result::Result<T, StorageError>;
