//! Tuples: immutable, cheaply clonable rows of [`Value`]s.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Index;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// An immutable tuple (row) of values.
///
/// Tuples are reference-counted so that the same physical row can be shared
/// between a peer's input table, its curated output table, and the
/// provenance relations that mention it, without copying the (potentially
/// large, SWISS-PROT sized) string payloads.
///
/// The **content hash is computed once at construction** (see
/// [`Tuple::content_hash`]): every hash container keyed by tuples — relation
/// sets, dedup sets, provenance-graph node tables — then hashes 8 bytes per
/// operation instead of re-walking the row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tuple {
    values: Arc<[Value]>,
    hash: u64,
}

/// The canonical content hash of a row: the combination
/// ([`crate::pool::combine_hashes`]) of the per-value content hashes
/// ([`crate::pool::value_hash`]) of its value slice. [`Tuple::new`] caches
/// exactly this, so a value slice that has not been wrapped in a `Tuple`
/// yet (e.g. a join head scratch buffer) can still be tested against
/// id-addressed relation storage without allocating — and so the same hash
/// is reachable from an interned `&[ValueId]` row by combining the pool's
/// cached per-value hashes ([`crate::pool::ValuePool::row_hash`]).
pub fn values_hash(values: &[Value]) -> u64 {
    crate::pool::combine_hashes(values.iter().map(crate::pool::value_hash))
}

impl Tuple {
    /// Create a tuple from a vector of values.
    pub fn new(values: Vec<Value>) -> Self {
        let hash = values_hash(&values);
        Tuple {
            values: values.into(),
            hash,
        }
    }

    /// The content hash cached at construction (equals
    /// [`values_hash`] of [`Tuple::values`]).
    #[inline]
    pub fn content_hash(&self) -> u64 {
        self.hash
    }

    /// Create a tuple whose [`values_hash`] the caller already computed
    /// (e.g. for a duplicate check against a relation before allocating).
    pub fn from_prehashed(values: Vec<Value>, hash: u64) -> Self {
        debug_assert_eq!(hash, values_hash(&values));
        Tuple {
            values: values.into(),
            hash,
        }
    }

    /// Create a tuple from an already-shared value slice and its
    /// precomputed [`values_hash`]. The single-allocation materialisation
    /// path: collecting an exact-size iterator straight into `Arc<[Value]>`
    /// skips the intermediate `Vec`.
    pub fn from_arc_prehashed(values: Arc<[Value]>, hash: u64) -> Self {
        debug_assert_eq!(hash, values_hash(&values));
        Tuple { values, hash }
    }

    /// Create the empty (0-ary) tuple.
    pub fn empty() -> Self {
        Tuple::new(Vec::new())
    }

    /// Number of attributes in the tuple.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Is this the empty tuple?
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Borrow the values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at position `i`, if in range.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.values.get(i)
    }

    /// Project the tuple onto the given column positions, in order.
    ///
    /// Positions may repeat; out-of-range positions panic (they indicate a
    /// schema/arity bug upstream, which we want loudly).
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple::new(positions.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Concatenate two tuples (used when joining rule bodies).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut vs = Vec::with_capacity(self.arity() + other.arity());
        vs.extend_from_slice(&self.values);
        vs.extend_from_slice(&other.values);
        Tuple::new(vs)
    }

    /// Does any attribute of this tuple contain a labeled null?
    ///
    /// Tuples with labeled nulls are kept in peer instances (they are needed
    /// to validate mappings with existentials) but dropped when producing
    /// certain answers to queries (paper §2.1).
    pub fn has_labeled_null(&self) -> bool {
        self.values.iter().any(Value::is_labeled_null)
    }

    /// Approximate size of the tuple in bytes (payload only).
    pub fn size_bytes(&self) -> usize {
        self.values.iter().map(Value::size_bytes).sum()
    }

    /// Iterate over the values.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.values.iter()
    }
}

/// Equality compares the cached hashes first (a constant-time negative fast
/// path), then the value slices; consistent because equal slices always
/// cache equal hashes.
impl PartialEq for Tuple {
    fn eq(&self, other: &Self) -> bool {
        self.hash == other.hash
            && (Arc::ptr_eq(&self.values, &other.values) || self.values == other.values)
    }
}

impl Eq for Tuple {}

/// Hashing writes the cached content hash. Hash containers must therefore
/// only ever be probed with keys hashed the same way (other `Tuple`s, or
/// raw-hash structures fed from [`values_hash`]) — never with a bare
/// `[Value]` slice.
impl Hash for Tuple {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// Ordering is by value content (the cached hash does not participate), so
/// sorted listings stay deterministic and human-meaningful.
impl PartialOrd for Tuple {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Tuple {
    fn cmp(&self, other: &Self) -> Ordering {
        self.values.cmp(&other.values)
    }
}

impl Index<usize> for Tuple {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        &self.values[index]
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple::new(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Tuple {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;

    fn into_iter(self) -> Self::IntoIter {
        self.values.iter()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Convenience macro-free constructor for integer tuples, used pervasively in
/// tests and examples that mirror the paper's running example.
pub fn int_tuple(values: &[i64]) -> Tuple {
    Tuple::new(values.iter().map(|&v| Value::int(v)).collect())
}

/// Convenience constructor for string tuples.
pub fn text_tuple(values: &[&str]) -> Tuple {
    Tuple::new(values.iter().map(|&v| Value::text(v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::SkolemFnId;

    #[test]
    fn construction_and_access() {
        let t = int_tuple(&[1, 2, 3]);
        assert_eq!(t.arity(), 3);
        assert_eq!(t[0], Value::int(1));
        assert_eq!(t.get(2), Some(&Value::int(3)));
        assert_eq!(t.get(3), None);
        assert!(!t.is_empty());
        assert!(Tuple::empty().is_empty());
    }

    #[test]
    fn projection_reorders_and_repeats() {
        let t = int_tuple(&[10, 20, 30]);
        let p = t.project(&[2, 0, 0]);
        assert_eq!(p, int_tuple(&[30, 10, 10]));
    }

    #[test]
    fn concat_joins_values() {
        let a = int_tuple(&[1, 2]);
        let b = text_tuple(&["x"]);
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        assert_eq!(c[2], Value::text("x"));
    }

    #[test]
    fn labeled_null_detection() {
        let t = Tuple::new(vec![
            Value::int(1),
            Value::labeled_null(SkolemFnId(0), vec![Value::int(1)]),
        ]);
        assert!(t.has_labeled_null());
        assert!(!int_tuple(&[1, 2]).has_labeled_null());
    }

    #[test]
    fn equality_and_hashing_by_value() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(int_tuple(&[1, 2]));
        assert!(s.contains(&int_tuple(&[1, 2])));
        assert!(!s.contains(&int_tuple(&[2, 1])));
    }

    #[test]
    fn display_is_parenthesised() {
        assert_eq!(int_tuple(&[3, 5]).to_string(), "(3, 5)");
        assert_eq!(Tuple::empty().to_string(), "()");
    }

    #[test]
    fn from_iterator_and_into_iterator() {
        let t: Tuple = (0..3).map(Value::int).collect();
        assert_eq!(t, int_tuple(&[0, 1, 2]));
        let sum: i64 = (&t).into_iter().filter_map(Value::as_int).sum();
        assert_eq!(sum, 3);
    }

    #[test]
    fn size_accounts_for_all_fields() {
        let t = text_tuple(&["abcd", "ef"]);
        assert!(t.size_bytes() >= 6);
        assert_eq!(int_tuple(&[1, 2]).size_bytes(), 16);
    }
}
