//! In-memory relation instances with set semantics and secondary indexes.

use std::collections::HashMap;
use std::collections::HashSet;
use std::fmt;

use crate::error::StorageError;
use crate::index::HashIndex;
use crate::schema::RelationSchema;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;

/// An in-memory relation instance: a set of tuples conforming to a schema,
/// plus any number of secondary hash indexes over column subsets.
///
/// Relations use **set semantics**, matching the paper's data model: within a
/// relation a tuple is uniquely identified by its values, which is exactly
/// the property §4.1.2 exploits to use tuple values as provenance tokens for
/// base data.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: RelationSchema,
    tuples: HashSet<Tuple>,
    indexes: HashMap<Vec<usize>, HashIndex>,
}

impl Relation {
    /// Create an empty relation with the given schema.
    pub fn new(schema: RelationSchema) -> Self {
        Relation {
            schema,
            tuples: HashSet::new(),
            indexes: HashMap::new(),
        }
    }

    /// The relation's schema.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// Number of tuples currently stored.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Does the relation contain this exact tuple?
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.tuples.contains(tuple)
    }

    fn check_arity(&self, tuple: &Tuple) -> Result<()> {
        if tuple.arity() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                relation: self.schema.name().to_string(),
                expected: self.schema.arity(),
                actual: tuple.arity(),
            });
        }
        Ok(())
    }

    /// Insert a tuple. Returns `Ok(true)` if the tuple was new, `Ok(false)`
    /// if it was already present (set semantics).
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool> {
        self.check_arity(&tuple)?;
        let fresh = self.tuples.insert(tuple.clone());
        if fresh {
            for idx in self.indexes.values_mut() {
                idx.insert(tuple.clone());
            }
        }
        Ok(fresh)
    }

    /// Remove a tuple. Returns `Ok(true)` if it was present.
    pub fn remove(&mut self, tuple: &Tuple) -> Result<bool> {
        self.check_arity(tuple)?;
        let removed = self.tuples.remove(tuple);
        if removed {
            for idx in self.indexes.values_mut() {
                idx.remove(tuple);
            }
        }
        Ok(removed)
    }

    /// Remove every tuple, keeping schema and index definitions.
    pub fn clear(&mut self) {
        self.tuples.clear();
        for idx in self.indexes.values_mut() {
            idx.clear();
        }
    }

    /// Iterate over all tuples (in arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// All tuples, sorted, for deterministic listings in tests and examples.
    pub fn sorted_tuples(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self.tuples.iter().cloned().collect();
        v.sort();
        v
    }

    /// Ensure a hash index exists over the given column positions and return
    /// a reference to it.
    pub fn ensure_index(&mut self, columns: &[usize]) -> Result<&HashIndex> {
        for &c in columns {
            if c >= self.schema.arity() {
                return Err(StorageError::InvalidColumns {
                    relation: self.schema.name().to_string(),
                    columns: columns.to_vec(),
                });
            }
        }
        if !self.indexes.contains_key(columns) {
            let idx = HashIndex::build(columns.to_vec(), self.tuples.iter());
            self.indexes.insert(columns.to_vec(), idx);
        }
        Ok(&self.indexes[columns])
    }

    /// A previously built index over the given columns, if any.
    pub fn index(&self, columns: &[usize]) -> Option<&HashIndex> {
        self.indexes.get(columns)
    }

    /// Tuples whose values at `columns` equal `key`, using an index if one
    /// exists and falling back to a scan otherwise.
    pub fn select_eq(&self, columns: &[usize], key: &[Value]) -> Vec<Tuple> {
        if let Some(idx) = self.indexes.get(columns) {
            return idx.probe(key).to_vec();
        }
        self.tuples
            .iter()
            .filter(|t| columns.iter().zip(key.iter()).all(|(&c, v)| &t[c] == v))
            .cloned()
            .collect()
    }

    /// Bulk-insert tuples, returning how many were new.
    pub fn insert_all(&mut self, tuples: impl IntoIterator<Item = Tuple>) -> Result<usize> {
        let mut added = 0;
        for t in tuples {
            if self.insert(t)? {
                added += 1;
            }
        }
        Ok(added)
    }

    /// Bulk-remove tuples, returning how many were present.
    pub fn remove_all<'a>(&mut self, tuples: impl IntoIterator<Item = &'a Tuple>) -> Result<usize> {
        let mut removed = 0;
        for t in tuples {
            if self.remove(t)? {
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// The tuples of this relation that do not contain labeled nulls,
    /// i.e. the certain-answer projection of the instance (paper §2.1).
    pub fn certain_tuples(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self
            .tuples
            .iter()
            .filter(|t| !t.has_labeled_null())
            .cloned()
            .collect();
        v.sort();
        v
    }

    /// Total payload size of all tuples in bytes (Figure 6's "DB size").
    pub fn size_bytes(&self) -> usize {
        self.tuples.iter().map(Tuple::size_bytes).sum()
    }
}

/// Two relations are equal when they have the same schema and the same set
/// of tuples; secondary indexes are derived data and do not participate.
impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.tuples == other.tuples
    }
}

impl Eq for Relation {}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} [{} tuples]", self.schema, self.len())?;
        for t in self.sorted_tuples() {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::int_tuple;
    use crate::value::SkolemFnId;

    fn rel() -> Relation {
        Relation::new(RelationSchema::new("B", &["id", "nam"]))
    }

    #[test]
    fn insert_is_set_semantics() {
        let mut r = rel();
        assert!(r.insert(int_tuple(&[3, 5])).unwrap());
        assert!(!r.insert(int_tuple(&[3, 5])).unwrap());
        assert_eq!(r.len(), 1);
        assert!(r.contains(&int_tuple(&[3, 5])));
    }

    #[test]
    fn arity_is_enforced() {
        let mut r = rel();
        let err = r.insert(int_tuple(&[1, 2, 3])).unwrap_err();
        assert!(matches!(err, StorageError::ArityMismatch { .. }));
        let err = r.remove(&int_tuple(&[1])).unwrap_err();
        assert!(matches!(err, StorageError::ArityMismatch { .. }));
    }

    #[test]
    fn remove_and_clear() {
        let mut r = rel();
        r.insert(int_tuple(&[1, 2])).unwrap();
        r.insert(int_tuple(&[3, 4])).unwrap();
        assert!(r.remove(&int_tuple(&[1, 2])).unwrap());
        assert!(!r.remove(&int_tuple(&[1, 2])).unwrap());
        assert_eq!(r.len(), 1);
        r.clear();
        assert!(r.is_empty());
    }

    #[test]
    fn indexes_stay_consistent_under_mutation() {
        let mut r = rel();
        r.insert(int_tuple(&[1, 10])).unwrap();
        r.ensure_index(&[0]).unwrap();
        r.insert(int_tuple(&[1, 20])).unwrap();
        r.insert(int_tuple(&[2, 30])).unwrap();
        r.remove(&int_tuple(&[1, 10])).unwrap();
        let idx = r.index(&[0]).unwrap();
        assert_eq!(idx.probe(&[Value::int(1)]).len(), 1);
        assert_eq!(idx.probe(&[Value::int(2)]).len(), 1);
    }

    #[test]
    fn ensure_index_rejects_bad_columns() {
        let mut r = rel();
        let err = r.ensure_index(&[5]).unwrap_err();
        assert!(matches!(err, StorageError::InvalidColumns { .. }));
    }

    #[test]
    fn select_eq_with_and_without_index() {
        let mut r = rel();
        r.insert(int_tuple(&[1, 10])).unwrap();
        r.insert(int_tuple(&[1, 20])).unwrap();
        r.insert(int_tuple(&[2, 30])).unwrap();
        // no index: scan
        assert_eq!(r.select_eq(&[0], &[Value::int(1)]).len(), 2);
        // with index: probe
        r.ensure_index(&[0]).unwrap();
        assert_eq!(r.select_eq(&[0], &[Value::int(1)]).len(), 2);
        assert_eq!(r.select_eq(&[0], &[Value::int(9)]).len(), 0);
    }

    #[test]
    fn certain_tuples_drop_labeled_nulls() {
        let mut r = rel();
        r.insert(int_tuple(&[2, 5])).unwrap();
        r.insert(Tuple::new(vec![
            Value::int(5),
            Value::labeled_null(SkolemFnId(0), vec![Value::int(5)]),
        ]))
        .unwrap();
        let certain = r.certain_tuples();
        assert_eq!(certain, vec![int_tuple(&[2, 5])]);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn bulk_operations_report_counts() {
        let mut r = rel();
        let n = r
            .insert_all(vec![
                int_tuple(&[1, 1]),
                int_tuple(&[1, 1]),
                int_tuple(&[2, 2]),
            ])
            .unwrap();
        assert_eq!(n, 2);
        let ts = [int_tuple(&[1, 1]), int_tuple(&[9, 9])];
        let n = r.remove_all(ts.iter()).unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn sorted_tuples_are_deterministic() {
        let mut r = rel();
        r.insert(int_tuple(&[3, 0])).unwrap();
        r.insert(int_tuple(&[1, 0])).unwrap();
        r.insert(int_tuple(&[2, 0])).unwrap();
        let v = r.sorted_tuples();
        assert_eq!(v[0], int_tuple(&[1, 0]));
        assert_eq!(v[2], int_tuple(&[3, 0]));
    }

    #[test]
    fn size_bytes_sums_tuples() {
        let mut r = rel();
        r.insert(int_tuple(&[1, 2])).unwrap();
        r.insert(int_tuple(&[3, 4])).unwrap();
        assert_eq!(r.size_bytes(), 32);
    }
}
