//! In-memory relation instances with set semantics, a stable tuple slab, and
//! ID-addressed secondary indexes.
//!
//! Tuples are stored once, in a slab addressed by [`TupleId`]; everything
//! else (the set-semantics lookup table and every secondary [`HashIndex`])
//! refers to tuples by id. Indexes are therefore O(ids) rather than O(data),
//! and the evaluator's join pipeline can work entirely over borrowed
//! `&Tuple`s resolved from ids — see [`Relation::probe_ids`],
//! [`Relation::iter_ids`], and [`Relation::select_eq_ref`].

use std::collections::HashMap;
use std::fmt;

use crate::error::StorageError;
use crate::index::{HashIndex, IdVec, TupleId};
use crate::schema::RelationSchema;
use crate::tuple::{values_hash, Tuple};
use crate::value::Value;
use crate::Result;

/// An in-memory relation instance: a set of tuples conforming to a schema,
/// plus any number of secondary hash indexes over column subsets.
///
/// Relations use **set semantics**, matching the paper's data model: within a
/// relation a tuple is uniquely identified by its values, which is exactly
/// the property §4.1.2 exploits to use tuple values as provenance tokens for
/// base data.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: RelationSchema,
    /// Stable tuple slab: `slab[id]` is the tuple with that [`TupleId`], or
    /// `None` for a freed slot awaiting reuse.
    slab: Vec<Option<Tuple>>,
    /// Freed slab slots, reused before the slab grows.
    free: Vec<TupleId>,
    /// Set-semantics lookup: cached content hash → candidate ids, verified
    /// against the slab. Probing never re-hashes tuple content (tuples
    /// carry their hash; raw value slices hash once via
    /// [`values_hash`]), and the map stores ids, not tuple handles.
    ids: HashMap<u64, IdVec, crate::fxhash::IdBuildHasher>,
    /// Number of live tuples.
    live: usize,
    indexes: HashMap<Vec<usize>, HashIndex>,
}

impl Relation {
    /// Create an empty relation with the given schema.
    pub fn new(schema: RelationSchema) -> Self {
        Relation {
            schema,
            slab: Vec::new(),
            free: Vec::new(),
            ids: HashMap::default(),
            live: 0,
            indexes: HashMap::new(),
        }
    }

    /// The relation's schema.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// Number of tuples currently stored.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Find the live id whose slab tuple has these values, among the
    /// candidates bucketed under `hash`.
    #[inline]
    fn find_id(&self, hash: u64, values: &[Value]) -> Option<TupleId> {
        let bucket = self.ids.get(&hash)?;
        bucket
            .as_slice()
            .iter()
            .copied()
            .find(|&id| self.tuple_by_id(id).values() == values)
    }

    /// Does the relation contain this exact tuple? Uses the tuple's cached
    /// content hash — no re-hashing.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.find_id(tuple.content_hash(), tuple.values()).is_some()
    }

    /// Does the relation contain a tuple with exactly these values? Unlike
    /// [`Relation::contains`] this needs no `Tuple` allocation, so the join
    /// pipeline can test negated literals and duplicate head derivations
    /// from a scratch buffer.
    pub fn contains_values(&self, values: &[Value]) -> bool {
        self.find_id(values_hash(values), values).is_some()
    }

    /// Like [`Relation::contains_values`] but with the caller supplying the
    /// precomputed [`values_hash`], so a subsequent
    /// [`Tuple::from_prehashed`](crate::tuple::Tuple::from_prehashed)
    /// construction reuses the same hash — one content hash per derived
    /// row, total.
    pub fn contains_values_hashed(&self, hash: u64, values: &[Value]) -> bool {
        debug_assert_eq!(hash, values_hash(values));
        self.find_id(hash, values).is_some()
    }

    /// The id of this exact tuple, if present.
    pub fn id_of(&self, tuple: &Tuple) -> Option<TupleId> {
        self.find_id(tuple.content_hash(), tuple.values())
    }

    /// The tuple addressed by `id`, if the slot is live.
    #[inline]
    pub fn tuple(&self, id: TupleId) -> Option<&Tuple> {
        self.slab.get(id.index()).and_then(Option::as_ref)
    }

    /// The tuple addressed by `id`; panics on a dead slot (which indicates
    /// an id-bookkeeping bug, wanted loudly in the join pipeline).
    #[inline]
    pub fn tuple_by_id(&self, id: TupleId) -> &Tuple {
        self.slab[id.index()]
            .as_ref()
            .expect("TupleId addresses a live slab slot")
    }

    fn check_arity(&self, tuple: &Tuple) -> Result<()> {
        if tuple.arity() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                relation: self.schema.name().to_string(),
                expected: self.schema.arity(),
                actual: tuple.arity(),
            });
        }
        Ok(())
    }

    /// Insert a tuple. Returns `Ok(true)` if the tuple was new, `Ok(false)`
    /// if it was already present (set semantics).
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool> {
        Ok(self.insert_full(tuple)?.1)
    }

    /// Reserve room for `additional` more tuples across the slab and the
    /// lookup table, so bulk fixpoint rounds do not pay incremental
    /// rehash/regrow cascades.
    pub fn reserve(&mut self, additional: usize) {
        self.slab.reserve(additional);
        self.ids.reserve(additional);
    }

    /// Insert a tuple, returning its id and whether it was new.
    pub fn insert_full(&mut self, tuple: Tuple) -> Result<(TupleId, bool)> {
        self.check_arity(&tuple)?;
        let hash = tuple.content_hash();
        if let Some(id) = self.find_id(hash, tuple.values()) {
            return Ok((id, false));
        }
        let id = match self.free.pop() {
            Some(id) => {
                self.slab[id.index()] = Some(tuple);
                id
            }
            None => {
                let id = TupleId::from_index(self.slab.len());
                self.slab.push(Some(tuple));
                id
            }
        };
        self.ids.entry(hash).or_default().push(id);
        self.live += 1;
        let stored = self.slab[id.index()].as_ref().expect("just stored");
        for idx in self.indexes.values_mut() {
            idx.insert(id, stored);
        }
        Ok((id, true))
    }

    /// Remove a tuple. Returns `Ok(true)` if it was present.
    pub fn remove(&mut self, tuple: &Tuple) -> Result<bool> {
        self.check_arity(tuple)?;
        let hash = tuple.content_hash();
        let Some(id) = self.find_id(hash, tuple.values()) else {
            return Ok(false);
        };
        let bucket = self.ids.get_mut(&hash).expect("bucket found above");
        bucket.swap_remove_id(id);
        if bucket.is_empty() {
            self.ids.remove(&hash);
        }
        self.live -= 1;
        let stored = self.slab[id.index()]
            .take()
            .expect("ids map and slab agree");
        for idx in self.indexes.values_mut() {
            idx.remove(id, &stored);
        }
        self.free.push(id);
        Ok(true)
    }

    /// Remove every tuple, keeping schema and index definitions.
    pub fn clear(&mut self) {
        self.slab.clear();
        self.free.clear();
        self.ids.clear();
        self.live = 0;
        for idx in self.indexes.values_mut() {
            idx.clear();
        }
    }

    /// Iterate over all tuples, in slab (insertion) order.
    pub fn iter(&self) -> TupleIter<'_> {
        TupleIter {
            inner: self.slab.iter(),
        }
    }

    /// Iterate over `(id, tuple)` pairs, in slab order.
    pub fn iter_ids(&self) -> TupleIdIter<'_> {
        TupleIdIter {
            inner: self.slab.iter().enumerate(),
        }
    }

    /// All tuples, sorted, for deterministic listings in tests and examples.
    pub fn sorted_tuples(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self.iter().cloned().collect();
        v.sort();
        v
    }

    /// Ensure a hash index exists over the given column positions and return
    /// a reference to it.
    pub fn ensure_index(&mut self, columns: &[usize]) -> Result<&HashIndex> {
        for &c in columns {
            if c >= self.schema.arity() {
                return Err(StorageError::InvalidColumns {
                    relation: self.schema.name().to_string(),
                    columns: columns.to_vec(),
                });
            }
        }
        if !self.indexes.contains_key(columns) {
            let idx = HashIndex::build_from(
                columns.to_vec(),
                self.slab
                    .iter()
                    .enumerate()
                    .filter_map(|(i, slot)| slot.as_ref().map(|t| (TupleId::from_index(i), t))),
            );
            self.indexes.insert(columns.to_vec(), idx);
        }
        Ok(&self.indexes[columns])
    }

    /// A previously built index over the given columns, if any.
    pub fn index(&self, columns: &[usize]) -> Option<&HashIndex> {
        self.indexes.get(columns)
    }

    /// Candidate ids whose projection onto `columns` hashes like `key`, if
    /// an index over those columns exists. Candidates must be re-verified
    /// against the key (hash buckets can merge distinct keys).
    pub fn probe_ids(&self, columns: &[usize], key: &[Value]) -> Option<&[TupleId]> {
        self.indexes.get(columns).map(|idx| idx.probe_ids(key))
    }

    /// Borrowed selection: all tuples whose values at `columns` equal `key`,
    /// using an index if one exists and falling back to a scan otherwise.
    /// Candidates are verified, so the result is exact.
    pub fn select_eq_ref<'a>(&'a self, columns: &'a [usize], key: &'a [Value]) -> SelectEqRef<'a> {
        let inner = match self.indexes.get(columns) {
            Some(idx) => SelectInner::Probe {
                rel: self,
                ids: idx.probe_ids(key).iter(),
            },
            None => SelectInner::Scan(self.iter()),
        };
        SelectEqRef {
            inner,
            columns,
            key,
        }
    }

    /// Tuples whose values at `columns` equal `key`, as owned clones. Prefer
    /// [`Relation::select_eq_ref`] where a borrow suffices.
    pub fn select_eq(&self, columns: &[usize], key: &[Value]) -> Vec<Tuple> {
        self.select_eq_ref(columns, key).cloned().collect()
    }

    /// Bulk-insert tuples, returning how many were new.
    pub fn insert_all(&mut self, tuples: impl IntoIterator<Item = Tuple>) -> Result<usize> {
        let mut added = 0;
        for t in tuples {
            if self.insert(t)? {
                added += 1;
            }
        }
        Ok(added)
    }

    /// Bulk-remove tuples, returning how many were present.
    pub fn remove_all<'a>(&mut self, tuples: impl IntoIterator<Item = &'a Tuple>) -> Result<usize> {
        let mut removed = 0;
        for t in tuples {
            if self.remove(t)? {
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// The tuples of this relation that do not contain labeled nulls,
    /// i.e. the certain-answer projection of the instance (paper §2.1).
    pub fn certain_tuples(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self
            .iter()
            .filter(|t| !t.has_labeled_null())
            .cloned()
            .collect();
        v.sort();
        v
    }

    /// Total payload size of all tuples in bytes (Figure 6's "DB size").
    pub fn size_bytes(&self) -> usize {
        self.iter().map(Tuple::size_bytes).sum()
    }
}

/// Borrowed iterator over a relation's tuples (live slab slots).
#[derive(Debug, Clone)]
pub struct TupleIter<'a> {
    inner: std::slice::Iter<'a, Option<Tuple>>,
}

impl<'a> Iterator for TupleIter<'a> {
    type Item = &'a Tuple;

    fn next(&mut self) -> Option<&'a Tuple> {
        for slot in self.inner.by_ref() {
            if let Some(t) = slot.as_ref() {
                return Some(t);
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, self.inner.size_hint().1)
    }
}

/// Borrowed iterator over a relation's `(id, tuple)` pairs.
#[derive(Debug, Clone)]
pub struct TupleIdIter<'a> {
    inner: std::iter::Enumerate<std::slice::Iter<'a, Option<Tuple>>>,
}

impl<'a> Iterator for TupleIdIter<'a> {
    type Item = (TupleId, &'a Tuple);

    fn next(&mut self) -> Option<(TupleId, &'a Tuple)> {
        for (i, slot) in self.inner.by_ref() {
            if let Some(t) = slot.as_ref() {
                return Some((TupleId::from_index(i), t));
            }
        }
        None
    }
}

/// Iterator returned by [`Relation::select_eq_ref`].
#[derive(Debug)]
pub struct SelectEqRef<'a> {
    inner: SelectInner<'a>,
    columns: &'a [usize],
    key: &'a [Value],
}

#[derive(Debug)]
enum SelectInner<'a> {
    Probe {
        rel: &'a Relation,
        ids: std::slice::Iter<'a, TupleId>,
    },
    Scan(TupleIter<'a>),
}

impl<'a> Iterator for SelectEqRef<'a> {
    type Item = &'a Tuple;

    fn next(&mut self) -> Option<&'a Tuple> {
        loop {
            let t = match &mut self.inner {
                SelectInner::Probe { rel, ids } => rel.tuple_by_id(*ids.next()?),
                SelectInner::Scan(it) => it.next()?,
            };
            if self
                .columns
                .iter()
                .zip(self.key.iter())
                .all(|(&c, v)| &t[c] == v)
            {
                return Some(t);
            }
        }
    }
}

/// Two relations are equal when they have the same schema and the same set
/// of tuples; ids and secondary indexes are derived data and do not
/// participate.
impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema
            && self.len() == other.len()
            && self.iter().all(|t| other.contains(t))
    }
}

impl Eq for Relation {}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} [{} tuples]", self.schema, self.len())?;
        for t in self.sorted_tuples() {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::int_tuple;
    use crate::value::SkolemFnId;

    fn rel() -> Relation {
        Relation::new(RelationSchema::new("B", &["id", "nam"]))
    }

    #[test]
    fn insert_is_set_semantics() {
        let mut r = rel();
        assert!(r.insert(int_tuple(&[3, 5])).unwrap());
        assert!(!r.insert(int_tuple(&[3, 5])).unwrap());
        assert_eq!(r.len(), 1);
        assert!(r.contains(&int_tuple(&[3, 5])));
    }

    #[test]
    fn arity_is_enforced() {
        let mut r = rel();
        let err = r.insert(int_tuple(&[1, 2, 3])).unwrap_err();
        assert!(matches!(err, StorageError::ArityMismatch { .. }));
        let err = r.remove(&int_tuple(&[1])).unwrap_err();
        assert!(matches!(err, StorageError::ArityMismatch { .. }));
    }

    #[test]
    fn remove_and_clear() {
        let mut r = rel();
        r.insert(int_tuple(&[1, 2])).unwrap();
        r.insert(int_tuple(&[3, 4])).unwrap();
        assert!(r.remove(&int_tuple(&[1, 2])).unwrap());
        assert!(!r.remove(&int_tuple(&[1, 2])).unwrap());
        assert_eq!(r.len(), 1);
        r.clear();
        assert!(r.is_empty());
    }

    #[test]
    fn ids_are_stable_and_reused_after_removal() {
        let mut r = rel();
        let (id1, fresh) = r.insert_full(int_tuple(&[1, 10])).unwrap();
        assert!(fresh);
        let (id2, _) = r.insert_full(int_tuple(&[2, 20])).unwrap();
        assert_ne!(id1, id2);
        // Duplicate insertion returns the existing id.
        let (again, fresh) = r.insert_full(int_tuple(&[1, 10])).unwrap();
        assert_eq!(again, id1);
        assert!(!fresh);
        // id lookup and resolution agree.
        assert_eq!(r.id_of(&int_tuple(&[2, 20])), Some(id2));
        assert_eq!(r.tuple(id2), Some(&int_tuple(&[2, 20])));
        assert_eq!(r.tuple_by_id(id1), &int_tuple(&[1, 10]));
        // Removal frees the slot; the next insert reuses it.
        r.remove(&int_tuple(&[1, 10])).unwrap();
        assert_eq!(r.tuple(id1), None);
        let (id3, _) = r.insert_full(int_tuple(&[3, 30])).unwrap();
        assert_eq!(id3, id1, "freed slot is reused");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn iter_ids_matches_iter() {
        let mut r = rel();
        for i in 0..5 {
            r.insert(int_tuple(&[i, i * 10])).unwrap();
        }
        r.remove(&int_tuple(&[2, 20])).unwrap();
        let via_ids: Vec<&Tuple> = r.iter_ids().map(|(_, t)| t).collect();
        let direct: Vec<&Tuple> = r.iter().collect();
        assert_eq!(via_ids, direct);
        for (id, t) in r.iter_ids() {
            assert_eq!(r.tuple_by_id(id), t);
        }
    }

    #[test]
    fn indexes_stay_consistent_under_mutation() {
        let mut r = rel();
        r.insert(int_tuple(&[1, 10])).unwrap();
        r.ensure_index(&[0]).unwrap();
        r.insert(int_tuple(&[1, 20])).unwrap();
        r.insert(int_tuple(&[2, 30])).unwrap();
        r.remove(&int_tuple(&[1, 10])).unwrap();
        let cols = [0usize];
        let one = [Value::int(1)];
        let two = [Value::int(2)];
        assert_eq!(r.select_eq_ref(&cols, &one).count(), 1);
        assert_eq!(r.select_eq_ref(&cols, &two).count(), 1);
        // The freed slot's id must have left the index: re-inserting a tuple
        // with a *different* key into the reused slot must not resurrect it.
        r.insert(int_tuple(&[9, 90])).unwrap();
        assert_eq!(r.select_eq_ref(&cols, &one).count(), 1);
        assert_eq!(r.select_eq_ref(&cols, &[Value::int(9)]).count(), 1);
        assert_eq!(r.index(&cols).unwrap().len(), r.len());
    }

    #[test]
    fn ensure_index_rejects_bad_columns() {
        let mut r = rel();
        let err = r.ensure_index(&[5]).unwrap_err();
        assert!(matches!(err, StorageError::InvalidColumns { .. }));
    }

    #[test]
    fn select_eq_with_and_without_index() {
        let mut r = rel();
        r.insert(int_tuple(&[1, 10])).unwrap();
        r.insert(int_tuple(&[1, 20])).unwrap();
        r.insert(int_tuple(&[2, 30])).unwrap();
        // no index: scan
        assert_eq!(r.select_eq(&[0], &[Value::int(1)]).len(), 2);
        assert!(r.probe_ids(&[0], &[Value::int(1)]).is_none());
        // with index: probe
        r.ensure_index(&[0]).unwrap();
        assert_eq!(r.select_eq(&[0], &[Value::int(1)]).len(), 2);
        assert_eq!(r.select_eq(&[0], &[Value::int(9)]).len(), 0);
        assert!(r.probe_ids(&[0], &[Value::int(1)]).is_some());
    }

    #[test]
    fn contains_values_matches_contains() {
        let mut r = rel();
        r.insert(int_tuple(&[3, 5])).unwrap();
        assert!(r.contains_values(&[Value::int(3), Value::int(5)]));
        assert!(!r.contains_values(&[Value::int(5), Value::int(3)]));
        assert!(!r.contains_values(&[Value::int(3)]));
    }

    #[test]
    fn certain_tuples_drop_labeled_nulls() {
        let mut r = rel();
        r.insert(int_tuple(&[2, 5])).unwrap();
        r.insert(Tuple::new(vec![
            Value::int(5),
            Value::labeled_null(SkolemFnId(0), vec![Value::int(5)]),
        ]))
        .unwrap();
        let certain = r.certain_tuples();
        assert_eq!(certain, vec![int_tuple(&[2, 5])]);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn bulk_operations_report_counts() {
        let mut r = rel();
        let n = r
            .insert_all(vec![
                int_tuple(&[1, 1]),
                int_tuple(&[1, 1]),
                int_tuple(&[2, 2]),
            ])
            .unwrap();
        assert_eq!(n, 2);
        let ts = [int_tuple(&[1, 1]), int_tuple(&[9, 9])];
        let n = r.remove_all(ts.iter()).unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn sorted_tuples_are_deterministic() {
        let mut r = rel();
        r.insert(int_tuple(&[3, 0])).unwrap();
        r.insert(int_tuple(&[1, 0])).unwrap();
        r.insert(int_tuple(&[2, 0])).unwrap();
        let v = r.sorted_tuples();
        assert_eq!(v[0], int_tuple(&[1, 0]));
        assert_eq!(v[2], int_tuple(&[3, 0]));
    }

    #[test]
    fn equality_ignores_ids_and_indexes() {
        let mut a = rel();
        let mut b = rel();
        a.insert(int_tuple(&[1, 1])).unwrap();
        a.insert(int_tuple(&[2, 2])).unwrap();
        // b gets the same tuples in a different slab layout, plus an index.
        b.insert(int_tuple(&[9, 9])).unwrap();
        b.insert(int_tuple(&[2, 2])).unwrap();
        b.remove(&int_tuple(&[9, 9])).unwrap();
        b.insert(int_tuple(&[1, 1])).unwrap();
        b.ensure_index(&[0]).unwrap();
        assert_eq!(a, b);
        b.insert(int_tuple(&[3, 3])).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn size_bytes_sums_tuples() {
        let mut r = rel();
        r.insert(int_tuple(&[1, 2])).unwrap();
        r.insert(int_tuple(&[3, 4])).unwrap();
        assert_eq!(r.size_bytes(), 32);
    }
}
