//! In-memory relation instances with set semantics, a stable tuple slab, an
//! interned-row arena, and ID-addressed secondary indexes.
//!
//! Tuples are stored once, in a slab addressed by [`TupleId`]; alongside the
//! slab every tuple's **interned row** — its values as dense [`ValueId`]s
//! into the owning database's [`ValuePool`] — lives in a single
//! arity-strided arena (`rows`), so a row never costs a per-row allocation.
//! Everything else (the set-semantics lookup table and every secondary
//! [`HashIndex`]) refers to tuples by id.
//!
//! The two representations serve two pipelines:
//!
//! * value-keyed APIs ([`Relation::contains`], [`Relation::remove`],
//!   [`Relation::iter`], [`Relation::select_eq_ref`]) read the slab and need
//!   no pool — they keep working for borrowed `&Tuple` consumers;
//! * the interned join pipeline reads `&[ValueId]` rows
//!   ([`Relation::row`], [`Relation::iter_rows`]) and tests duplicate head
//!   derivations with [`Relation::contains_row_hashed`] — integer compares
//!   against cached hashes, no value is touched and nothing allocates.
//!
//! Only insertion interns, so only the insert APIs take the pool.

use std::collections::HashMap;
use std::fmt;

use crate::error::StorageError;
use crate::index::{HashIndex, IdVec, TupleId};
use crate::pool::{ValueId, ValuePool};
use crate::schema::RelationSchema;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;

/// An in-memory relation instance: a set of tuples conforming to a schema,
/// plus any number of secondary hash indexes over column subsets.
///
/// Relations use **set semantics**, matching the paper's data model: within a
/// relation a tuple is uniquely identified by its values, which is exactly
/// the property §4.1.2 exploits to use tuple values as provenance tokens for
/// base data.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: RelationSchema,
    /// Stable tuple slab: `slab[id]` is the tuple with that [`TupleId`], or
    /// `None` for a freed slot awaiting reuse.
    slab: Vec<Option<Tuple>>,
    /// Interned rows, strided by the schema arity: slab slot `i`'s row
    /// occupies `rows[i*arity .. (i+1)*arity]`. Dead slots keep stale ids
    /// (they are rewritten on slot reuse and never read while dead).
    rows: Vec<ValueId>,
    /// Freed slab slots, reused before the slab grows.
    free: Vec<TupleId>,
    /// Set-semantics lookup: content hash → candidate ids, verified against
    /// the slab. The hash is the shared scheme of [`crate::pool`], so it is
    /// reachable from a `Tuple` (cached), a raw value slice
    /// ([`crate::tuple::values_hash`]), and an interned row
    /// ([`ValuePool::row_hash`]) alike.
    ids: HashMap<u64, IdVec, crate::fxhash::IdBuildHasher>,
    /// Number of live tuples.
    live: usize,
    /// Monotone content version: incremented by every successful insert,
    /// remove, and clear. External caches (e.g. the evaluator's throwaway
    /// join indexes) use it as a staleness stamp — unlike `len`, it cannot
    /// return to a previous value after a delete/insert pair.
    version: u64,
    indexes: HashMap<Vec<usize>, HashIndex>,
}

impl Relation {
    /// Create an empty relation with the given schema.
    pub fn new(schema: RelationSchema) -> Self {
        Relation {
            schema,
            slab: Vec::new(),
            rows: Vec::new(),
            free: Vec::new(),
            ids: HashMap::default(),
            live: 0,
            version: 0,
            indexes: HashMap::new(),
        }
    }

    /// The relation's schema.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// Number of tuples currently stored.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The relation's monotone content version (see the field docs).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Find the live id whose slab tuple has these values, among the
    /// candidates bucketed under `hash`.
    #[inline]
    fn find_id(&self, hash: u64, values: &[Value]) -> Option<TupleId> {
        let bucket = self.ids.get(&hash)?;
        bucket
            .as_slice()
            .iter()
            .copied()
            .find(|&id| self.tuple_by_id(id).values() == values)
    }

    /// Find the live id whose interned row equals `row` — integer compares
    /// only, valid because the pool hash-conses values (equal value rows
    /// always intern to equal id rows).
    #[inline]
    fn find_row_id(&self, row_hash: u64, row: &[ValueId]) -> Option<TupleId> {
        let bucket = self.ids.get(&row_hash)?;
        bucket
            .as_slice()
            .iter()
            .copied()
            .find(|&id| self.row(id) == row)
    }

    /// Does the relation contain this exact tuple? Uses the tuple's cached
    /// content hash — no re-hashing.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.find_id(tuple.content_hash(), tuple.values()).is_some()
    }

    /// Does the relation contain a tuple with exactly these values? Unlike
    /// [`Relation::contains`] this needs no `Tuple` allocation, so callers
    /// can test negated literals and duplicate derivations from a scratch
    /// buffer.
    pub fn contains_values(&self, values: &[Value]) -> bool {
        self.find_id(crate::tuple::values_hash(values), values)
            .is_some()
    }

    /// Like [`Relation::contains_values`] but with the caller supplying the
    /// precomputed [`crate::tuple::values_hash`], so a subsequent
    /// [`Tuple::from_prehashed`](crate::tuple::Tuple::from_prehashed)
    /// construction reuses the same hash — one content hash per derived
    /// row, total.
    pub fn contains_values_hashed(&self, hash: u64, values: &[Value]) -> bool {
        debug_assert_eq!(hash, crate::tuple::values_hash(values));
        self.find_id(hash, values).is_some()
    }

    /// Does the relation contain a tuple with exactly this interned row?
    /// `row_hash` is the combined pool hash ([`ValuePool::row_hash`]) the
    /// caller already folded while instantiating the row. The whole check
    /// is integer compares — the duplicate-derivation fast path of the
    /// interned join pipeline.
    #[inline]
    pub fn contains_row_hashed(&self, row_hash: u64, row: &[ValueId]) -> bool {
        self.find_row_id(row_hash, row).is_some()
    }

    /// The id of this exact tuple, if present.
    pub fn id_of(&self, tuple: &Tuple) -> Option<TupleId> {
        self.find_id(tuple.content_hash(), tuple.values())
    }

    /// The id of the tuple with this interned row, if present.
    pub fn id_of_row(&self, pool: &ValuePool, row: &[ValueId]) -> Option<TupleId> {
        self.find_row_id(pool.row_hash(row), row)
    }

    /// The tuple addressed by `id`, if the slot is live.
    #[inline]
    pub fn tuple(&self, id: TupleId) -> Option<&Tuple> {
        self.slab.get(id.index()).and_then(Option::as_ref)
    }

    /// The tuple addressed by `id`; panics on a dead slot (which indicates
    /// an id-bookkeeping bug, wanted loudly in the join pipeline).
    #[inline]
    pub fn tuple_by_id(&self, id: TupleId) -> &Tuple {
        self.slab[id.index()]
            .as_ref()
            .expect("TupleId addresses a live slab slot")
    }

    /// The interned row of the tuple addressed by `id`. Callers must only
    /// pass live ids (as with [`Relation::tuple_by_id`]); dead slots hold
    /// stale ids.
    #[inline]
    pub fn row(&self, id: TupleId) -> &[ValueId] {
        let a = self.schema.arity();
        let start = id.index() * a;
        &self.rows[start..start + a]
    }

    fn check_arity(&self, arity: usize) -> Result<()> {
        if arity != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                relation: self.schema.name().to_string(),
                expected: self.schema.arity(),
                actual: arity,
            });
        }
        Ok(())
    }

    /// Insert a tuple, interning its values. Returns `Ok(true)` if the
    /// tuple was new, `Ok(false)` if it was already present (set semantics
    /// — duplicates touch neither the pool nor any allocation).
    pub fn insert(&mut self, pool: &mut ValuePool, tuple: Tuple) -> Result<bool> {
        Ok(self.insert_full(pool, tuple)?.1)
    }

    /// Reserve room for `additional` more tuples across the slab, the row
    /// arena, and the lookup table, so bulk fixpoint rounds do not pay
    /// incremental rehash/regrow cascades.
    pub fn reserve(&mut self, additional: usize) {
        self.slab.reserve(additional);
        self.rows.reserve(additional * self.schema.arity());
        self.ids.reserve(additional);
    }

    /// Claim a slab slot for a fresh tuple whose interned row the caller
    /// will have written at the slot's arena range. Returns the id. A free
    /// function over the storage fields so callers can hold disjoint
    /// borrows (e.g. a lookup-table entry) simultaneously.
    fn claim_slot(
        slab: &mut Vec<Option<Tuple>>,
        rows: &mut Vec<ValueId>,
        free: &mut Vec<TupleId>,
        arity: usize,
        tuple: Tuple,
        write_row: impl FnOnce(&mut [ValueId]),
    ) -> TupleId {
        match free.pop() {
            Some(id) => {
                slab[id.index()] = Some(tuple);
                let start = id.index() * arity;
                write_row(&mut rows[start..start + arity]);
                id
            }
            None => {
                let id = TupleId::from_index(slab.len());
                slab.push(Some(tuple));
                let start = rows.len();
                rows.resize(start + arity, ValueId(0));
                write_row(&mut rows[start..start + arity]);
                id
            }
        }
    }

    /// Insert a tuple, returning its id and whether it was new. Dedup and
    /// bucket registration share one lookup-table probe.
    pub fn insert_full(&mut self, pool: &mut ValuePool, tuple: Tuple) -> Result<(TupleId, bool)> {
        self.check_arity(tuple.arity())?;
        let hash = tuple.content_hash();
        let bucket = self.ids.entry(hash).or_default();
        if let Some(&id) = bucket.as_slice().iter().find(|id| {
            self.slab[id.index()]
                .as_ref()
                .expect("bucketed ids are live")
                == &tuple
        }) {
            return Ok((id, false));
        }
        let id = Self::claim_slot(
            &mut self.slab,
            &mut self.rows,
            &mut self.free,
            self.schema.arity(),
            tuple,
            |row| {
                // Interned below; placeholder writes keep the arena sized.
                for slot in row.iter_mut() {
                    *slot = ValueId::NONE;
                }
            },
        );
        bucket.push(id);
        self.version += 1;
        // Intern after claiming the slot so the stored tuple's values are
        // the interning source (no extra clone of the incoming tuple).
        let a = self.schema.arity();
        let start = id.index() * a;
        for (i, v) in self.slab[id.index()]
            .as_ref()
            .expect("just stored")
            .values()
            .iter()
            .enumerate()
        {
            self.rows[start + i] = pool.intern(v);
        }
        self.live += 1;
        let row_range = start..start + a;
        for idx in self.indexes.values_mut() {
            idx.insert_row(id, &self.rows[row_range.clone()], pool);
        }
        Ok((id, true))
    }

    /// Insert an already-interned row with its combined pool hash
    /// (`row_hash == pool.row_hash(row)`). The duplicate path is integer
    /// compares only and allocates nothing; only a genuinely new row
    /// materialises a `Tuple` from the pool. Dedup and bucket registration
    /// share one lookup-table probe.
    pub fn insert_row(
        &mut self,
        pool: &ValuePool,
        row: &[ValueId],
        row_hash: u64,
    ) -> Result<(TupleId, bool)> {
        self.check_arity(row.len())?;
        debug_assert_eq!(row_hash, pool.row_hash(row));
        let a = self.schema.arity();
        let bucket = self.ids.entry(row_hash).or_default();
        if let Some(&id) = bucket
            .as_slice()
            .iter()
            .find(|id| &self.rows[id.index() * a..id.index() * a + a] == row)
        {
            return Ok((id, false));
        }
        // Exact-size iterator → Arc<[Value]> collects in one allocation.
        let values: std::sync::Arc<[Value]> =
            row.iter().map(|&vid| pool.value(vid).clone()).collect();
        let tuple = Tuple::from_arc_prehashed(values, row_hash);
        let id = Self::claim_slot(
            &mut self.slab,
            &mut self.rows,
            &mut self.free,
            a,
            tuple,
            |slot| slot.copy_from_slice(row),
        );
        bucket.push(id);
        self.version += 1;
        self.live += 1;
        for idx in self.indexes.values_mut() {
            idx.insert_row(id, row, pool);
        }
        Ok((id, true))
    }

    /// Remove a tuple. Returns `Ok(true)` if it was present. Removal is
    /// value-keyed and needs no pool (the pool is append-only; the dead
    /// slot's row simply goes stale until the slot is reused).
    pub fn remove(&mut self, tuple: &Tuple) -> Result<bool> {
        self.check_arity(tuple.arity())?;
        let hash = tuple.content_hash();
        let Some(id) = self.find_id(hash, tuple.values()) else {
            return Ok(false);
        };
        let bucket = self.ids.get_mut(&hash).expect("bucket found above");
        bucket.swap_remove_id(id);
        if bucket.is_empty() {
            self.ids.remove(&hash);
        }
        self.version += 1;
        self.live -= 1;
        let stored = self.slab[id.index()]
            .take()
            .expect("ids map and slab agree");
        for idx in self.indexes.values_mut() {
            idx.remove(id, &stored);
        }
        self.free.push(id);
        Ok(true)
    }

    /// Remove every tuple, keeping schema and index definitions.
    pub fn clear(&mut self) {
        self.slab.clear();
        self.rows.clear();
        self.free.clear();
        self.ids.clear();
        self.version += 1;
        self.live = 0;
        for idx in self.indexes.values_mut() {
            idx.clear();
        }
    }

    /// Iterate over all tuples, in slab (insertion) order.
    pub fn iter(&self) -> TupleIter<'_> {
        TupleIter {
            inner: self.slab.iter(),
        }
    }

    /// Iterate over `(id, tuple)` pairs, in slab order.
    pub fn iter_ids(&self) -> TupleIdIter<'_> {
        TupleIdIter {
            inner: self.slab.iter().enumerate(),
        }
    }

    /// Iterate over `(id, interned row)` pairs, in slab order — the
    /// interned join pipeline's scan path.
    pub fn iter_rows(&self) -> RowIter<'_> {
        RowIter {
            inner: self.slab.iter().enumerate(),
            rows: &self.rows,
            arity: self.schema.arity(),
        }
    }

    /// All tuples, sorted, for deterministic listings in tests and examples.
    pub fn sorted_tuples(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self.iter().cloned().collect();
        v.sort();
        v
    }

    /// A copy for immutable snapshot views: everything except the secondary
    /// hash indexes, which are derived join-acceleration state the snapshot
    /// read paths (iteration, content-hash lookups) never consult. Equality
    /// already ignores indexes, so the copy compares equal to `self`.
    pub fn snapshot_clone(&self) -> Relation {
        Relation {
            schema: self.schema.clone(),
            slab: self.slab.clone(),
            rows: self.rows.clone(),
            free: self.free.clone(),
            ids: self.ids.clone(),
            live: self.live,
            version: self.version,
            indexes: HashMap::new(),
        }
    }

    /// Ensure a hash index exists over the given column positions and return
    /// a reference to it.
    pub fn ensure_index(&mut self, columns: &[usize]) -> Result<&HashIndex> {
        for &c in columns {
            if c >= self.schema.arity() {
                return Err(StorageError::InvalidColumns {
                    relation: self.schema.name().to_string(),
                    columns: columns.to_vec(),
                });
            }
        }
        if !self.indexes.contains_key(columns) {
            let idx = HashIndex::build_from(
                columns.to_vec(),
                self.slab
                    .iter()
                    .enumerate()
                    .filter_map(|(i, slot)| slot.as_ref().map(|t| (TupleId::from_index(i), t))),
            );
            self.indexes.insert(columns.to_vec(), idx);
        }
        Ok(&self.indexes[columns])
    }

    /// A previously built index over the given columns, if any.
    pub fn index(&self, columns: &[usize]) -> Option<&HashIndex> {
        self.indexes.get(columns)
    }

    /// Candidate ids whose projection onto `columns` hashes like `key`, if
    /// an index over those columns exists. Candidates must be re-verified
    /// against the key (hash buckets can merge distinct keys).
    pub fn probe_ids(&self, columns: &[usize], key: &[Value]) -> Option<&[TupleId]> {
        self.indexes.get(columns).map(|idx| idx.probe_ids(key))
    }

    /// Borrowed selection: all tuples whose values at `columns` equal `key`,
    /// using an index if one exists and falling back to a scan otherwise.
    /// Candidates are verified, so the result is exact.
    pub fn select_eq_ref<'a>(&'a self, columns: &'a [usize], key: &'a [Value]) -> SelectEqRef<'a> {
        let inner = match self.indexes.get(columns) {
            Some(idx) => SelectInner::Probe {
                rel: self,
                ids: idx.probe_ids(key).iter(),
            },
            None => SelectInner::Scan(self.iter()),
        };
        SelectEqRef {
            inner,
            columns,
            key,
        }
    }

    /// Tuples whose values at `columns` equal `key`, as owned clones. Prefer
    /// [`Relation::select_eq_ref`] where a borrow suffices.
    pub fn select_eq(&self, columns: &[usize], key: &[Value]) -> Vec<Tuple> {
        self.select_eq_ref(columns, key).cloned().collect()
    }

    /// Bulk-insert tuples, returning how many were new.
    pub fn insert_all(
        &mut self,
        pool: &mut ValuePool,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<usize> {
        let mut added = 0;
        for t in tuples {
            if self.insert(pool, t)? {
                added += 1;
            }
        }
        Ok(added)
    }

    /// Bulk-remove tuples, returning how many were present.
    pub fn remove_all<'a>(&mut self, tuples: impl IntoIterator<Item = &'a Tuple>) -> Result<usize> {
        let mut removed = 0;
        for t in tuples {
            if self.remove(t)? {
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Mark every [`ValueId`] referenced by a live row of this relation in
    /// `live` (indexed by id). Part of the pool-compaction protocol: the
    /// owning [`crate::Database`] folds the marks of all its relations
    /// before rebuilding the pool. Also used by snapshot views to compute
    /// their live vocabulary without access to the owning pool.
    pub fn mark_live_values(&self, live: &mut [bool]) {
        for (_, row) in self.iter_rows() {
            for id in row {
                live[id.index()] = true;
            }
        }
    }

    /// Rewrite every live row through a pool-compaction remap table (old id
    /// → new id; see [`ValuePool::compact`]). Dead slots are reset to
    /// [`ValueId::NONE`] so a stale pre-compaction id can never alias a
    /// post-compaction value, and the content version is bumped so external
    /// caches stamped against this relation (throwaway join indexes) cannot
    /// observe pre-compaction ids.
    ///
    /// The set-semantics lookup table and every secondary [`HashIndex`] key
    /// on **content hashes**, which compaction does not change, and bucket
    /// [`TupleId`]s, which stay put — so neither needs rebuilding.
    pub(crate) fn restamp_rows(&mut self, remap: &[ValueId]) {
        let arity = self.schema.arity();
        for (i, slot) in self.slab.iter().enumerate() {
            let row = &mut self.rows[i * arity..(i + 1) * arity];
            if slot.is_some() {
                for id in row {
                    let new = remap[id.index()];
                    debug_assert!(!new.is_none(), "live row references a dead pool id");
                    *id = new;
                }
            } else {
                row.fill(ValueId::NONE);
            }
        }
        self.version += 1;
    }

    /// The tuples of this relation that do not contain labeled nulls,
    /// i.e. the certain-answer projection of the instance (paper §2.1).
    pub fn certain_tuples(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self
            .iter()
            .filter(|t| !t.has_labeled_null())
            .cloned()
            .collect();
        v.sort();
        v
    }

    /// Total payload size of all tuples in bytes (Figure 6's "DB size").
    pub fn size_bytes(&self) -> usize {
        self.iter().map(Tuple::size_bytes).sum()
    }
}

/// Borrowed iterator over a relation's tuples (live slab slots).
#[derive(Debug, Clone)]
pub struct TupleIter<'a> {
    inner: std::slice::Iter<'a, Option<Tuple>>,
}

impl<'a> Iterator for TupleIter<'a> {
    type Item = &'a Tuple;

    fn next(&mut self) -> Option<&'a Tuple> {
        for slot in self.inner.by_ref() {
            if let Some(t) = slot.as_ref() {
                return Some(t);
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, self.inner.size_hint().1)
    }
}

/// Borrowed iterator over a relation's `(id, tuple)` pairs.
#[derive(Debug, Clone)]
pub struct TupleIdIter<'a> {
    inner: std::iter::Enumerate<std::slice::Iter<'a, Option<Tuple>>>,
}

impl<'a> Iterator for TupleIdIter<'a> {
    type Item = (TupleId, &'a Tuple);

    fn next(&mut self) -> Option<(TupleId, &'a Tuple)> {
        for (i, slot) in self.inner.by_ref() {
            if slot.is_some() {
                return Some((TupleId::from_index(i), slot.as_ref().expect("just checked")));
            }
        }
        None
    }
}

/// Borrowed iterator over a relation's `(id, interned row)` pairs.
#[derive(Debug, Clone)]
pub struct RowIter<'a> {
    inner: std::iter::Enumerate<std::slice::Iter<'a, Option<Tuple>>>,
    rows: &'a [ValueId],
    arity: usize,
}

impl<'a> Iterator for RowIter<'a> {
    type Item = (TupleId, &'a [ValueId]);

    fn next(&mut self) -> Option<(TupleId, &'a [ValueId])> {
        for (i, slot) in self.inner.by_ref() {
            if slot.is_some() {
                let start = i * self.arity;
                return Some((
                    TupleId::from_index(i),
                    &self.rows[start..start + self.arity],
                ));
            }
        }
        None
    }
}

/// Iterator returned by [`Relation::select_eq_ref`].
#[derive(Debug)]
pub struct SelectEqRef<'a> {
    inner: SelectInner<'a>,
    columns: &'a [usize],
    key: &'a [Value],
}

#[derive(Debug)]
enum SelectInner<'a> {
    Probe {
        rel: &'a Relation,
        ids: std::slice::Iter<'a, TupleId>,
    },
    Scan(TupleIter<'a>),
}

impl<'a> Iterator for SelectEqRef<'a> {
    type Item = &'a Tuple;

    fn next(&mut self) -> Option<&'a Tuple> {
        loop {
            let t = match &mut self.inner {
                SelectInner::Probe { rel, ids } => rel.tuple_by_id(*ids.next()?),
                SelectInner::Scan(it) => it.next()?,
            };
            if self
                .columns
                .iter()
                .zip(self.key.iter())
                .all(|(&c, v)| &t[c] == v)
            {
                return Some(t);
            }
        }
    }
}

/// Two relations are equal when they have the same schema and the same set
/// of tuples; ids, interned rows and secondary indexes are derived data and
/// do not participate (the relations may even belong to databases with
/// different pools).
impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema
            && self.len() == other.len()
            && self.iter().all(|t| other.contains(t))
    }
}

impl Eq for Relation {}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} [{} tuples]", self.schema, self.len())?;
        for t in self.sorted_tuples() {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::int_tuple;
    use crate::value::SkolemFnId;

    fn rel() -> (Relation, ValuePool) {
        (
            Relation::new(RelationSchema::new("B", &["id", "nam"])),
            ValuePool::new(),
        )
    }

    #[test]
    fn insert_is_set_semantics() {
        let (mut r, mut p) = rel();
        assert!(r.insert(&mut p, int_tuple(&[3, 5])).unwrap());
        assert!(!r.insert(&mut p, int_tuple(&[3, 5])).unwrap());
        assert_eq!(r.len(), 1);
        assert!(r.contains(&int_tuple(&[3, 5])));
        // The duplicate insert interned nothing.
        assert_eq!(p.stats().misses, 2);
        assert_eq!(p.stats().hits, 0);
    }

    #[test]
    fn arity_is_enforced() {
        let (mut r, mut p) = rel();
        let err = r.insert(&mut p, int_tuple(&[1, 2, 3])).unwrap_err();
        assert!(matches!(err, StorageError::ArityMismatch { .. }));
        let err = r.remove(&int_tuple(&[1])).unwrap_err();
        assert!(matches!(err, StorageError::ArityMismatch { .. }));
        let row = [ValueId(0)];
        let err = r.insert_row(&p, &row, 0).unwrap_err();
        assert!(matches!(err, StorageError::ArityMismatch { .. }));
    }

    #[test]
    fn remove_and_clear() {
        let (mut r, mut p) = rel();
        r.insert(&mut p, int_tuple(&[1, 2])).unwrap();
        r.insert(&mut p, int_tuple(&[3, 4])).unwrap();
        assert!(r.remove(&int_tuple(&[1, 2])).unwrap());
        assert!(!r.remove(&int_tuple(&[1, 2])).unwrap());
        assert_eq!(r.len(), 1);
        r.clear();
        assert!(r.is_empty());
    }

    #[test]
    fn ids_are_stable_and_reused_after_removal() {
        let (mut r, mut p) = rel();
        let (id1, fresh) = r.insert_full(&mut p, int_tuple(&[1, 10])).unwrap();
        assert!(fresh);
        let (id2, _) = r.insert_full(&mut p, int_tuple(&[2, 20])).unwrap();
        assert_ne!(id1, id2);
        // Duplicate insertion returns the existing id.
        let (again, fresh) = r.insert_full(&mut p, int_tuple(&[1, 10])).unwrap();
        assert_eq!(again, id1);
        assert!(!fresh);
        // id lookup and resolution agree.
        assert_eq!(r.id_of(&int_tuple(&[2, 20])), Some(id2));
        assert_eq!(r.tuple(id2), Some(&int_tuple(&[2, 20])));
        assert_eq!(r.tuple_by_id(id1), &int_tuple(&[1, 10]));
        // Removal frees the slot; the next insert reuses it.
        r.remove(&int_tuple(&[1, 10])).unwrap();
        assert_eq!(r.tuple(id1), None);
        let (id3, _) = r.insert_full(&mut p, int_tuple(&[3, 30])).unwrap();
        assert_eq!(id3, id1, "freed slot is reused");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn interned_rows_track_the_slab() {
        let (mut r, mut p) = rel();
        let (id1, _) = r.insert_full(&mut p, int_tuple(&[1, 10])).unwrap();
        let (id2, _) = r.insert_full(&mut p, int_tuple(&[2, 10])).unwrap();
        // Shared value 10 interns to the same id in both rows.
        assert_eq!(r.row(id1)[1], r.row(id2)[1]);
        assert_ne!(r.row(id1)[0], r.row(id2)[0]);
        // Rows resolve back to the stored values.
        for (tid, row) in r.iter_rows() {
            let t = r.tuple_by_id(tid);
            for (vid, v) in row.iter().zip(t.values()) {
                assert_eq!(p.value(*vid), v);
            }
        }
        // Slot reuse rewrites the row in place.
        r.remove(&int_tuple(&[1, 10])).unwrap();
        let (id3, _) = r.insert_full(&mut p, int_tuple(&[7, 70])).unwrap();
        assert_eq!(id3, id1);
        assert_eq!(p.value(r.row(id3)[0]), &Value::int(7));
    }

    #[test]
    fn insert_row_matches_insert() {
        let (mut r, mut p) = rel();
        r.insert(&mut p, int_tuple(&[1, 10])).unwrap();
        // Build a row by interning and insert it as ids.
        let row = [p.intern(&Value::int(2)), p.intern(&Value::int(10))];
        let hash = p.row_hash(&row);
        let (id, fresh) = r.insert_row(&p, &row, hash).unwrap();
        assert!(fresh);
        assert_eq!(r.tuple_by_id(id), &int_tuple(&[2, 10]));
        assert!(r.contains(&int_tuple(&[2, 10])));
        // A duplicate id-row is detected without allocating.
        let (again, fresh) = r.insert_row(&p, &row, hash).unwrap();
        assert_eq!(again, id);
        assert!(!fresh);
        assert!(r.contains_row_hashed(hash, &row));
        assert_eq!(r.id_of_row(&p, &row), Some(id));
        // The value-keyed map sees id-inserted tuples and vice versa.
        let row1 = [p.intern(&Value::int(1)), p.intern(&Value::int(10))];
        assert!(r.contains_row_hashed(p.row_hash(&row1), &row1));
    }

    #[test]
    fn iter_ids_matches_iter() {
        let (mut r, mut p) = rel();
        for i in 0..5 {
            r.insert(&mut p, int_tuple(&[i, i * 10])).unwrap();
        }
        r.remove(&int_tuple(&[2, 20])).unwrap();
        let via_ids: Vec<&Tuple> = r.iter_ids().map(|(_, t)| t).collect();
        let direct: Vec<&Tuple> = r.iter().collect();
        assert_eq!(via_ids, direct);
        for (id, t) in r.iter_ids() {
            assert_eq!(r.tuple_by_id(id), t);
        }
        // iter_rows covers the same live set.
        assert_eq!(r.iter_rows().count(), r.len());
    }

    #[test]
    fn indexes_stay_consistent_under_mutation() {
        let (mut r, mut p) = rel();
        r.insert(&mut p, int_tuple(&[1, 10])).unwrap();
        r.ensure_index(&[0]).unwrap();
        r.insert(&mut p, int_tuple(&[1, 20])).unwrap();
        r.insert(&mut p, int_tuple(&[2, 30])).unwrap();
        r.remove(&int_tuple(&[1, 10])).unwrap();
        let cols = [0usize];
        let one = [Value::int(1)];
        let two = [Value::int(2)];
        assert_eq!(r.select_eq_ref(&cols, &one).count(), 1);
        assert_eq!(r.select_eq_ref(&cols, &two).count(), 1);
        // The freed slot's id must have left the index: re-inserting a tuple
        // with a *different* key into the reused slot must not resurrect it.
        r.insert(&mut p, int_tuple(&[9, 90])).unwrap();
        assert_eq!(r.select_eq_ref(&cols, &one).count(), 1);
        assert_eq!(r.select_eq_ref(&cols, &[Value::int(9)]).count(), 1);
        assert_eq!(r.index(&cols).unwrap().len(), r.len());
    }

    #[test]
    fn ensure_index_rejects_bad_columns() {
        let (mut r, _) = rel();
        let err = r.ensure_index(&[5]).unwrap_err();
        assert!(matches!(err, StorageError::InvalidColumns { .. }));
    }

    #[test]
    fn select_eq_with_and_without_index() {
        let (mut r, mut p) = rel();
        r.insert(&mut p, int_tuple(&[1, 10])).unwrap();
        r.insert(&mut p, int_tuple(&[1, 20])).unwrap();
        r.insert(&mut p, int_tuple(&[2, 30])).unwrap();
        // no index: scan
        assert_eq!(r.select_eq(&[0], &[Value::int(1)]).len(), 2);
        assert!(r.probe_ids(&[0], &[Value::int(1)]).is_none());
        // with index: probe
        r.ensure_index(&[0]).unwrap();
        assert_eq!(r.select_eq(&[0], &[Value::int(1)]).len(), 2);
        assert_eq!(r.select_eq(&[0], &[Value::int(9)]).len(), 0);
        assert!(r.probe_ids(&[0], &[Value::int(1)]).is_some());
    }

    #[test]
    fn contains_values_matches_contains() {
        let (mut r, mut p) = rel();
        r.insert(&mut p, int_tuple(&[3, 5])).unwrap();
        assert!(r.contains_values(&[Value::int(3), Value::int(5)]));
        assert!(!r.contains_values(&[Value::int(5), Value::int(3)]));
        assert!(!r.contains_values(&[Value::int(3)]));
    }

    #[test]
    fn certain_tuples_drop_labeled_nulls() {
        let (mut r, mut p) = rel();
        r.insert(&mut p, int_tuple(&[2, 5])).unwrap();
        r.insert(
            &mut p,
            Tuple::new(vec![
                Value::int(5),
                Value::labeled_null(SkolemFnId(0), vec![Value::int(5)]),
            ]),
        )
        .unwrap();
        let certain = r.certain_tuples();
        assert_eq!(certain, vec![int_tuple(&[2, 5])]);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn bulk_operations_report_counts() {
        let (mut r, mut p) = rel();
        let n = r
            .insert_all(
                &mut p,
                vec![int_tuple(&[1, 1]), int_tuple(&[1, 1]), int_tuple(&[2, 2])],
            )
            .unwrap();
        assert_eq!(n, 2);
        let ts = [int_tuple(&[1, 1]), int_tuple(&[9, 9])];
        let n = r.remove_all(ts.iter()).unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn sorted_tuples_are_deterministic() {
        let (mut r, mut p) = rel();
        r.insert(&mut p, int_tuple(&[3, 0])).unwrap();
        r.insert(&mut p, int_tuple(&[1, 0])).unwrap();
        r.insert(&mut p, int_tuple(&[2, 0])).unwrap();
        let v = r.sorted_tuples();
        assert_eq!(v[0], int_tuple(&[1, 0]));
        assert_eq!(v[2], int_tuple(&[3, 0]));
    }

    #[test]
    fn equality_ignores_ids_indexes_and_pools() {
        let (mut a, mut pa) = rel();
        let (mut b, mut pb) = rel();
        a.insert(&mut pa, int_tuple(&[1, 1])).unwrap();
        a.insert(&mut pa, int_tuple(&[2, 2])).unwrap();
        // b gets the same tuples in a different slab layout, a different
        // pool history, plus an index.
        b.insert(&mut pb, int_tuple(&[9, 9])).unwrap();
        b.insert(&mut pb, int_tuple(&[2, 2])).unwrap();
        b.remove(&int_tuple(&[9, 9])).unwrap();
        b.insert(&mut pb, int_tuple(&[1, 1])).unwrap();
        b.ensure_index(&[0]).unwrap();
        assert_eq!(a, b);
        b.insert(&mut pb, int_tuple(&[3, 3])).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn restamp_preserves_rows_and_probes() {
        let (mut r, mut p) = rel();
        r.insert(&mut p, int_tuple(&[1, 10])).unwrap();
        r.insert(&mut p, int_tuple(&[2, 10])).unwrap();
        r.insert(&mut p, int_tuple(&[3, 30])).unwrap();
        r.ensure_index(&[1]).unwrap();
        // Delete one tuple, leaving its values (3, 30) dead in the pool,
        // and leave a dead slab slot behind.
        r.remove(&int_tuple(&[3, 30])).unwrap();
        let version_before = r.version();

        let mut live = vec![false; p.len()];
        r.mark_live_values(&mut live);
        assert_eq!(live.iter().filter(|&&l| l).count(), 3, "1, 2, 10 live");
        let remap = p.compact(&live);
        r.restamp_rows(&remap);

        assert!(r.version() > version_before);
        // Rows resolve to the same values through the compacted pool.
        for (tid, row) in r.iter_rows() {
            let t = r.tuple_by_id(tid);
            for (vid, v) in row.iter().zip(t.values()) {
                assert_eq!(p.value(*vid), v);
            }
        }
        // Value- and id-keyed membership still agree.
        assert!(r.contains(&int_tuple(&[1, 10])));
        let row = [p.intern(&Value::int(2)), p.intern(&Value::int(10))];
        assert!(r.contains_row_hashed(p.row_hash(&row), &row));
        // Index probes (content-hashed) still answer.
        assert_eq!(r.select_eq_ref(&[1], &[Value::int(10)]).count(), 2);
        // New inserts intern into the compacted pool and dedup correctly.
        assert!(!r.insert(&mut p, int_tuple(&[1, 10])).unwrap());
        assert!(r.insert(&mut p, int_tuple(&[3, 30])).unwrap());
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn size_bytes_sums_tuples() {
        let (mut r, mut p) = rel();
        r.insert(&mut p, int_tuple(&[1, 2])).unwrap();
        r.insert(&mut p, int_tuple(&[3, 4])).unwrap();
        assert_eq!(r.size_bytes(), 32);
    }
}
