//! Compilation of tgds into datalog rules with Skolem functions and a
//! relational provenance encoding (paper §4.1.1–4.1.2 and §5).
//!
//! A tgd `φ(x̄,ȳ) → ∃z̄ ψ(x̄,z̄)` named `m` compiles to:
//!
//! 1. a **provenance relation** `P_m(x̄,ȳ)` with one attribute per distinct
//!    LHS variable, and the rule `P_m(x̄,ȳ) :- φ(x̄,ȳ)` (rule *m′*);
//! 2. for each RHS atom `T(…)`, a projection rule
//!    `T(x̄,f̄(x̄)) :- P_m(x̄,ȳ)` (rules *m″*), where every existential
//!    variable is replaced by a Skolem function applied to the tgd's
//!    frontier variables.
//!
//! With the **composite mapping table** encoding (§5) there is a single
//! provenance relation per tgd even when the RHS has several atoms; with the
//! per-head-atom encoding (the initial scheme of §4.1.2) each RHS atom gets
//! its own provenance relation.
//!
//! The compiled artifact also keeps *templates* for the source and target
//! atoms: given a stored provenance row, [`AtomTemplate::instantiate`]
//! reconstructs the exact source/target tuples of that rule instantiation,
//! which is how `orchestra-core` materialises the provenance graph of §3.2.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use orchestra_datalog::atom::Atom;
use orchestra_datalog::rule::Rule;
use orchestra_datalog::term::Term;
use orchestra_storage::schema::{internal_name, InternalRole};
use orchestra_storage::{RelationSchema, SkolemFnId, Tuple, Value};

use crate::error::MappingError;
use crate::tgd::Tgd;
use crate::Result;

/// How provenance relations are laid out (paper §5, "Provenance storage").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ProvenanceEncoding {
    /// One provenance relation per tgd, shared by all of its RHS atoms
    /// (the "composite mapping table" the paper found faster in practice).
    #[default]
    CompositePerTgd,
    /// One provenance relation per (tgd, RHS atom) pair — the layout
    /// initially described in §4.1.2.
    PerHeadAtom,
}

/// A term of an [`AtomTemplate`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TemplateTerm {
    /// Copy the value of the given provenance-relation column.
    Col(usize),
    /// A constant from the tgd text.
    Const(Value),
    /// A Skolem function applied to provenance-relation columns; evaluates to
    /// a labeled null.
    Skolem(SkolemFnId, Vec<usize>),
}

/// A template for reconstructing a source or target atom's tuple from a
/// provenance-relation row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AtomTemplate {
    /// The (internal) relation the atom refers to, e.g. `B_o` or `B_i`.
    pub relation: String,
    /// One template term per attribute.
    pub terms: Vec<TemplateTerm>,
}

impl AtomTemplate {
    /// Arity of the template.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Build the concrete tuple this template denotes for the given
    /// provenance row.
    pub fn instantiate(&self, row: &Tuple) -> Tuple {
        let values: Vec<Value> = self
            .terms
            .iter()
            .map(|t| match t {
                TemplateTerm::Col(i) => row[*i].clone(),
                TemplateTerm::Const(v) => v.clone(),
                TemplateTerm::Skolem(f, cols) => {
                    Value::labeled_null(*f, cols.iter().map(|&i| row[i].clone()).collect())
                }
            })
            .collect();
        Tuple::new(values)
    }
}

/// One provenance relation of a compiled mapping, together with the target
/// atoms it derives.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProvenanceTable {
    /// Name of the provenance relation, e.g. `P_m1`.
    pub relation: String,
    /// Indexes into [`CompiledMapping::targets`] of the RHS atoms this table
    /// derives.
    pub target_indexes: Vec<usize>,
}

/// The result of compiling one tgd.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompiledMapping {
    /// The mapping's name (`m1`, `m2`, …).
    pub name: String,
    /// The original (user-level) tgd.
    pub tgd: Tgd,
    /// Column names of the provenance relation(s): the distinct LHS
    /// variables in order of first occurrence.
    pub columns: Vec<String>,
    /// The provenance relation(s) and which targets each derives.
    pub provenance: Vec<ProvenanceTable>,
    /// Templates for the LHS atoms (over the source peers' output tables).
    pub sources: Vec<AtomTemplate>,
    /// Templates for the RHS atoms (over the target peers' input tables),
    /// with Skolem terms for existential variables.
    pub targets: Vec<AtomTemplate>,
    /// The datalog rules implementing this mapping (the *m′* and *m″* rules).
    pub rules: Vec<Rule>,
    /// The Skolem function allocated for each existential variable.
    pub skolems: BTreeMap<String, SkolemFnId>,
}

impl CompiledMapping {
    /// The schemas of this mapping's provenance relations (attribute names
    /// are the LHS variable names).
    pub fn provenance_schemas(&self) -> Vec<RelationSchema> {
        let attrs: Vec<&str> = self.columns.iter().map(String::as_str).collect();
        self.provenance
            .iter()
            .map(|p| RelationSchema::new(p.relation.clone(), &attrs))
            .collect()
    }

    /// For a stored provenance row of table `table_index`, reconstruct the
    /// source tuples `(relation, tuple)` of the rule instantiation.
    pub fn instantiate_sources(&self, row: &Tuple) -> Vec<(String, Tuple)> {
        self.sources
            .iter()
            .map(|t| (t.relation.clone(), t.instantiate(row)))
            .collect()
    }

    /// For a stored provenance row of the given provenance table,
    /// reconstruct the target tuples `(relation, tuple)`.
    pub fn instantiate_targets(&self, table_index: usize, row: &Tuple) -> Vec<(String, Tuple)> {
        self.provenance[table_index]
            .target_indexes
            .iter()
            .map(|&ti| {
                let t = &self.targets[ti];
                (t.relation.clone(), t.instantiate(row))
            })
            .collect()
    }

    /// Borrowed variant of [`CompiledMapping::instantiate_sources`]: relation
    /// names come back as `&str`, so the caller allocates nothing but the
    /// instantiated tuples themselves. This is the provenance-graph
    /// construction hot path.
    pub fn sources_iter<'a>(&'a self, row: &'a Tuple) -> impl Iterator<Item = (&'a str, Tuple)> {
        self.sources
            .iter()
            .map(move |t| (t.relation.as_str(), t.instantiate(row)))
    }

    /// Borrowed variant of [`CompiledMapping::instantiate_targets`].
    pub fn targets_iter<'a>(
        &'a self,
        table_index: usize,
        row: &'a Tuple,
    ) -> impl Iterator<Item = (&'a str, Tuple)> {
        self.provenance[table_index]
            .target_indexes
            .iter()
            .map(move |&ti| {
                let t = &self.targets[ti];
                (t.relation.as_str(), t.instantiate(row))
            })
    }
}

/// Allocates globally unique Skolem function ids across all mappings of a
/// CDSS (a separate function per existential variable per tgd, §4.1.1).
#[derive(Debug, Default, Clone)]
pub struct SkolemAllocator {
    next: u32,
}

impl SkolemAllocator {
    /// A fresh allocator.
    pub fn new() -> Self {
        SkolemAllocator::default()
    }

    /// Allocate the next Skolem function id.
    pub fn fresh(&mut self) -> SkolemFnId {
        let id = SkolemFnId(self.next);
        self.next += 1;
        id
    }
}

/// Compile a tgd into datalog rules and provenance templates.
///
/// If `internalize` is true (the normal CDSS case), LHS relations are renamed
/// to the source peers' output tables (`R_o`) and RHS relations to the target
/// peers' input tables (`R_i`), per §3.1. If false, relation names are used
/// verbatim (useful for plain data-exchange scenarios and unit tests).
pub fn compile_mapping(
    tgd: &Tgd,
    encoding: ProvenanceEncoding,
    skolems: &mut SkolemAllocator,
    internalize: bool,
) -> Result<CompiledMapping> {
    let source_name = |r: &str| -> String {
        if internalize {
            internal_name(r, InternalRole::Output)
        } else {
            r.to_string()
        }
    };
    let target_name = |r: &str| -> String {
        if internalize {
            internal_name(r, InternalRole::Input)
        } else {
            r.to_string()
        }
    };

    // Provenance columns: distinct LHS variables in order of first occurrence.
    let mut columns: Vec<String> = Vec::new();
    let mut column_of: BTreeMap<String, usize> = BTreeMap::new();
    for atom in &tgd.lhs {
        for term in &atom.terms {
            if let Some(v) = term.as_var() {
                if !column_of.contains_key(v) {
                    column_of.insert(v.to_string(), columns.len());
                    columns.push(v.to_string());
                }
            }
        }
    }
    if columns.is_empty() {
        return Err(MappingError::InvalidTgd {
            mapping: tgd.name.clone(),
            message: "the LHS must bind at least one variable".into(),
        });
    }

    // Frontier variables in column order (the Skolem function arguments).
    let frontier = tgd.frontier_variables();
    let frontier_cols: Vec<usize> = columns
        .iter()
        .enumerate()
        .filter(|(_, v)| frontier.contains(v.as_str()))
        .map(|(i, _)| i)
        .collect();
    let frontier_vars: Vec<String> = frontier_cols.iter().map(|&i| columns[i].clone()).collect();

    // One Skolem function per existential variable.
    let mut skolem_of: BTreeMap<String, SkolemFnId> = BTreeMap::new();
    for v in tgd.existential_variables() {
        skolem_of.insert(v.to_string(), skolems.fresh());
    }

    // Source templates (LHS atoms over R_o).
    let mut sources = Vec::new();
    for atom in &tgd.lhs {
        let terms: Vec<TemplateTerm> = atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Var(v) => TemplateTerm::Col(column_of[v]),
                Term::Const(c) => TemplateTerm::Const(c.clone()),
                Term::Skolem(_, _) => unreachable!("tgds are validated to contain no Skolems"),
            })
            .collect();
        sources.push(AtomTemplate {
            relation: source_name(&atom.relation),
            terms,
        });
    }

    // Target templates (RHS atoms over R_i, with Skolems for existentials).
    let mut targets = Vec::new();
    for atom in &tgd.rhs {
        let terms: Vec<TemplateTerm> = atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Var(v) => {
                    if let Some(&c) = column_of.get(v.as_str()) {
                        TemplateTerm::Col(c)
                    } else {
                        TemplateTerm::Skolem(skolem_of[v.as_str()], frontier_cols.clone())
                    }
                }
                Term::Const(c) => TemplateTerm::Const(c.clone()),
                Term::Skolem(_, _) => unreachable!("tgds are validated to contain no Skolems"),
            })
            .collect();
        targets.push(AtomTemplate {
            relation: target_name(&atom.relation),
            terms,
        });
    }

    // Provenance tables per encoding.
    let provenance: Vec<ProvenanceTable> = match encoding {
        ProvenanceEncoding::CompositePerTgd => vec![ProvenanceTable {
            relation: format!("P_{}", tgd.name),
            target_indexes: (0..targets.len()).collect(),
        }],
        ProvenanceEncoding::PerHeadAtom => (0..targets.len())
            .map(|i| ProvenanceTable {
                relation: format!("P_{}_{}", tgd.name, i),
                target_indexes: vec![i],
            })
            .collect(),
    };

    // Datalog rules.
    let column_var_terms: Vec<Term> = columns.iter().map(|v| Term::var(v.clone())).collect();
    let lhs_body: Vec<Atom> = tgd
        .lhs
        .iter()
        .map(|a| Atom::new(source_name(&a.relation), a.terms.clone()))
        .collect();

    let mut rules = Vec::new();
    for table in &provenance {
        // (m′) P_m(x̄, ȳ) :- φ(x̄, ȳ)
        rules.push(Rule::positive(
            Atom::new(table.relation.clone(), column_var_terms.clone()),
            lhs_body.clone(),
        ));
        // (m″) T(x̄, f̄(x̄)) :- P_m(x̄, ȳ), for each target of the table
        for &ti in &table.target_indexes {
            let template = &targets[ti];
            let head_terms: Vec<Term> = template
                .terms
                .iter()
                .map(|t| match t {
                    TemplateTerm::Col(c) => Term::var(columns[*c].clone()),
                    TemplateTerm::Const(v) => Term::Const(v.clone()),
                    TemplateTerm::Skolem(f, _) => Term::Skolem(
                        *f,
                        frontier_vars.iter().map(|v| Term::var(v.clone())).collect(),
                    ),
                })
                .collect();
            rules.push(Rule::positive(
                Atom::new(template.relation.clone(), head_terms),
                vec![Atom::new(table.relation.clone(), column_var_terms.clone())],
            ));
        }
    }

    for rule in &rules {
        rule.validate()?;
    }

    Ok(CompiledMapping {
        name: tgd.name.clone(),
        tgd: tgd.clone(),
        columns,
        provenance,
        sources,
        targets,
        rules,
        skolems: skolem_of,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tgd::example2_mappings;
    use orchestra_storage::tuple::int_tuple;

    fn compile(tgd_text: &str, name: &str, internalize: bool) -> CompiledMapping {
        let tgd = Tgd::parse(name, tgd_text).unwrap();
        let mut alloc = SkolemAllocator::new();
        compile_mapping(
            &tgd,
            ProvenanceEncoding::CompositePerTgd,
            &mut alloc,
            internalize,
        )
        .unwrap()
    }

    #[test]
    fn example_9_provenance_relations() {
        // PB1(i, c, n) :- G(i, c, n);  B(i, n) :- PB1(i, c, n)
        let m1 = compile("G(i, c, n) -> B(i, n)", "m1", false);
        assert_eq!(m1.columns, vec!["i", "c", "n"]);
        assert_eq!(m1.provenance.len(), 1);
        assert_eq!(m1.provenance[0].relation, "P_m1");
        assert_eq!(m1.rules.len(), 2);
        assert_eq!(m1.rules[0].to_string(), "P_m1(i, c, n) :- G(i, c, n).");
        assert_eq!(m1.rules[1].to_string(), "B(i, n) :- P_m1(i, c, n).");

        let m4 = compile("B(i, c), U(n, c) -> B(i, n)", "m4", false);
        assert_eq!(m4.columns, vec!["i", "c", "n"]);
        assert_eq!(
            m4.rules[0].to_string(),
            "P_m4(i, c, n) :- B(i, c), U(n, c)."
        );
        assert_eq!(m4.rules[1].to_string(), "B(i, n) :- P_m4(i, c, n).");
    }

    #[test]
    fn internalized_rules_use_output_and_input_tables() {
        let m1 = compile("G(i, c, n) -> B(i, n)", "m1", true);
        assert_eq!(m1.rules[0].to_string(), "P_m1(i, c, n) :- G_o(i, c, n).");
        assert_eq!(m1.rules[1].to_string(), "B_i(i, n) :- P_m1(i, c, n).");
        assert_eq!(m1.sources[0].relation, "G_o");
        assert_eq!(m1.targets[0].relation, "B_i");
    }

    #[test]
    fn example_8_skolemisation() {
        // B_o(i, n) -> ∃c U_i(n, c) becomes U_i(n, f(n)) :- P_m3(i, n) with
        // the Skolem parameterised on the frontier variable n only.
        let m3 = compile("B(i, n) -> U(n, c)", "m3", true);
        assert_eq!(m3.skolems.len(), 1);
        let rule_text = m3.rules[1].to_string();
        assert!(rule_text.starts_with("U_i(n, #f0(n))"), "{rule_text}");
        // The template agrees with the rule.
        let row = int_tuple(&[3, 2]); // columns are [i, n]
        assert_eq!(m3.columns, vec!["i", "n"]);
        let targets = m3.instantiate_targets(0, &row);
        assert_eq!(targets.len(), 1);
        assert_eq!(targets[0].0, "U_i");
        let t = &targets[0].1;
        assert_eq!(t[0], Value::int(2));
        assert_eq!(
            t[1],
            Value::labeled_null(m3.skolems["c"], vec![Value::int(2)])
        );
    }

    #[test]
    fn separate_skolems_per_existential_and_per_tgd() {
        let tgds = [
            Tgd::parse("a", "R(x) -> S(x, z, w)").unwrap(),
            Tgd::parse("b", "R(x) -> T(x, z)").unwrap(),
        ];
        let mut alloc = SkolemAllocator::new();
        let a = compile_mapping(
            &tgds[0],
            ProvenanceEncoding::CompositePerTgd,
            &mut alloc,
            false,
        )
        .unwrap();
        let b = compile_mapping(
            &tgds[1],
            ProvenanceEncoding::CompositePerTgd,
            &mut alloc,
            false,
        )
        .unwrap();
        let mut ids: Vec<SkolemFnId> = a.skolems.values().copied().collect();
        ids.extend(b.skolems.values().copied());
        ids.sort();
        ids.dedup();
        assert_eq!(
            ids.len(),
            3,
            "each existential gets its own Skolem function"
        );
    }

    #[test]
    fn per_head_atom_encoding_splits_tables() {
        let tgd = Tgd::parse("m", "G(i, c, n) -> B(i, n), U(n, c)").unwrap();
        let mut alloc = SkolemAllocator::new();
        let c = compile_mapping(&tgd, ProvenanceEncoding::PerHeadAtom, &mut alloc, false).unwrap();
        assert_eq!(c.provenance.len(), 2);
        assert_eq!(c.provenance[0].relation, "P_m_0");
        assert_eq!(c.provenance[1].relation, "P_m_1");
        // 2 tables × (1 m′ rule + 1 m″ rule)
        assert_eq!(c.rules.len(), 4);
        let composite = compile_mapping(
            &tgd,
            ProvenanceEncoding::CompositePerTgd,
            &mut SkolemAllocator::new(),
            false,
        )
        .unwrap();
        assert_eq!(composite.provenance.len(), 1);
        assert_eq!(composite.rules.len(), 3);
    }

    #[test]
    fn source_and_target_instantiation_roundtrip() {
        let m4 = compile("B(i, c), U(n, c) -> B(i, n)", "m4", true);
        // Provenance row for i=3, c=5, n=2 (the running example's m4
        // instantiation deriving B(3,2) from B(3,5) and U(2,5)).
        let row = int_tuple(&[3, 5, 2]);
        let sources = m4.instantiate_sources(&row);
        assert_eq!(sources[0], ("B_o".to_string(), int_tuple(&[3, 5])));
        assert_eq!(sources[1], ("U_o".to_string(), int_tuple(&[2, 5])));
        let targets = m4.instantiate_targets(0, &row);
        assert_eq!(targets, vec![("B_i".to_string(), int_tuple(&[3, 2]))]);
    }

    #[test]
    fn provenance_schemas_carry_variable_names() {
        let m1 = compile("G(i, c, n) -> B(i, n)", "m1", false);
        let schemas = m1.provenance_schemas();
        assert_eq!(schemas.len(), 1);
        assert_eq!(schemas[0].name(), "P_m1");
        assert_eq!(
            schemas[0].attributes(),
            &["i".to_string(), "c".to_string(), "n".to_string()]
        );
    }

    #[test]
    fn constants_in_tgds_compile() {
        let m = compile("G(i, 5, n) -> B(i, \"x\")", "mc", false);
        assert_eq!(m.columns, vec!["i", "n"]);
        let row = int_tuple(&[7, 9]);
        let sources = m.instantiate_sources(&row);
        assert_eq!(
            sources[0].1,
            Tuple::new(vec![Value::int(7), Value::int(5), Value::int(9)])
        );
        let targets = m.instantiate_targets(0, &row);
        assert_eq!(
            targets[0].1,
            Tuple::new(vec![Value::int(7), Value::text("x")])
        );
    }

    #[test]
    fn all_example_2_mappings_compile() {
        let mut alloc = SkolemAllocator::new();
        for tgd in example2_mappings() {
            let c = compile_mapping(&tgd, ProvenanceEncoding::CompositePerTgd, &mut alloc, true)
                .unwrap();
            for r in &c.rules {
                r.validate().unwrap();
            }
        }
    }
}
