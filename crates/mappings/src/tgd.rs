//! Tuple-generating dependencies (tgds): the paper's mapping formalism.
//!
//! A tgd `∀x̄,ȳ (φ(x̄,ȳ) → ∃z̄ ψ(x̄,z̄))` is written here as
//! `φ -> ψ` with the quantifiers implicit: every RHS variable that does not
//! occur on the LHS is existentially quantified. Example 2 of the paper:
//!
//! ```text
//! m1:  G(i, c, n) -> B(i, n)
//! m3:  B(i, n)    -> U(n, c)          % c is existential
//! m4:  B(i, c), U(n, c) -> B(i, n)
//! ```

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use orchestra_datalog::atom::Atom;
use orchestra_datalog::parser::parse_atom;
use orchestra_datalog::term::Term;

use crate::error::MappingError;
use crate::Result;

/// A tuple-generating dependency (GLAV mapping) with a name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tgd {
    /// The mapping's name, e.g. `"m1"`. Used as the provenance mapping
    /// function symbol and in trust conditions.
    pub name: String,
    /// The conjunction of LHS (body / source) atoms, `φ(x̄, ȳ)`.
    pub lhs: Vec<Atom>,
    /// The conjunction of RHS (head / target) atoms, `ψ(x̄, z̄)`.
    pub rhs: Vec<Atom>,
}

impl Tgd {
    /// Create a tgd and validate its shape.
    pub fn new(name: impl Into<String>, lhs: Vec<Atom>, rhs: Vec<Atom>) -> Result<Self> {
        let tgd = Tgd {
            name: name.into(),
            lhs,
            rhs,
        };
        tgd.validate()?;
        Ok(tgd)
    }

    /// Parse a tgd from text of the form `A(x,y), B(y,z) -> C(x,z)`.
    /// Atoms are separated by `,` or `&`; the arrow may be `->` or `→`.
    pub fn parse(name: impl Into<String>, input: &str) -> Result<Self> {
        let name = name.into();
        let normalized = input.replace('→', "->");
        let mut sides = normalized.splitn(2, "->");
        let lhs_text = sides.next().unwrap_or("");
        let rhs_text = sides.next().ok_or_else(|| MappingError::Parse {
            message: "missing `->`".into(),
            input: input.to_string(),
        })?;

        let parse_side = |text: &str| -> Result<Vec<Atom>> {
            split_atoms(text)
                .into_iter()
                .map(|a| {
                    parse_atom(&a).map_err(|e| MappingError::Parse {
                        message: e.to_string(),
                        input: input.to_string(),
                    })
                })
                .collect()
        };

        Tgd::new(name, parse_side(lhs_text)?, parse_side(rhs_text)?)
    }

    fn validate(&self) -> Result<()> {
        if self.lhs.is_empty() {
            return Err(MappingError::InvalidTgd {
                mapping: self.name.clone(),
                message: "the LHS must contain at least one atom".into(),
            });
        }
        if self.rhs.is_empty() {
            return Err(MappingError::InvalidTgd {
                mapping: self.name.clone(),
                message: "the RHS must contain at least one atom".into(),
            });
        }
        for atom in self.lhs.iter().chain(self.rhs.iter()) {
            for term in &atom.terms {
                if matches!(term, Term::Skolem(_, _)) {
                    return Err(MappingError::InvalidTgd {
                        mapping: self.name.clone(),
                        message: "tgds may not contain Skolem terms; existential variables are \
                                  Skolemised during compilation"
                            .into(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Variables occurring on the LHS (`x̄ ∪ ȳ`).
    pub fn lhs_variables(&self) -> BTreeSet<&str> {
        let mut out = BTreeSet::new();
        for a in &self.lhs {
            for t in &a.terms {
                t.collect_vars(&mut out);
            }
        }
        out
    }

    /// Variables occurring on the RHS.
    pub fn rhs_variables(&self) -> BTreeSet<&str> {
        let mut out = BTreeSet::new();
        for a in &self.rhs {
            for t in &a.terms {
                t.collect_vars(&mut out);
            }
        }
        out
    }

    /// Frontier variables: shared between LHS and RHS (`x̄`). These are the
    /// arguments of the Skolem functions created for this tgd (§4.1.1).
    pub fn frontier_variables(&self) -> BTreeSet<&str> {
        self.lhs_variables()
            .intersection(&self.rhs_variables())
            .copied()
            .collect()
    }

    /// Existential variables: RHS variables not bound by the LHS (`z̄`).
    pub fn existential_variables(&self) -> BTreeSet<&str> {
        self.rhs_variables()
            .difference(&self.lhs_variables())
            .copied()
            .collect()
    }

    /// Is this tgd *full*, i.e. without existential variables? Full tgds are
    /// the case for which the computed instance is guaranteed to be a
    /// universal solution even in the presence of rejections (the paper's
    /// erratum in §3.1).
    pub fn is_full(&self) -> bool {
        self.existential_variables().is_empty()
    }

    /// Relations mentioned on the LHS.
    pub fn source_relations(&self) -> BTreeSet<&str> {
        self.lhs.iter().map(|a| a.relation.as_str()).collect()
    }

    /// Relations mentioned on the RHS.
    pub fn target_relations(&self) -> BTreeSet<&str> {
        self.rhs.iter().map(|a| a.relation.as_str()).collect()
    }
}

/// Split a conjunction of atoms at top-level `,` or `&` separators
/// (commas inside parentheses belong to an atom's argument list).
fn split_atoms(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for ch in text.chars() {
        match ch {
            '(' => {
                depth += 1;
                current.push(ch);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                current.push(ch);
            }
            ',' | '&' if depth == 0 => {
                if !current.trim().is_empty() {
                    out.push(current.trim().to_string());
                }
                current.clear();
            }
            _ => current.push(ch),
        }
    }
    if !current.trim().is_empty() {
        out.push(current.trim().to_string());
    }
    out
}

impl fmt::Display for Tgd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}) ", self.name)?;
        for (i, a) in self.lhs.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, " → ")?;
        let existentials = self.existential_variables();
        if !existentials.is_empty() {
            write!(f, "∃")?;
            for (i, v) in existentials.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, " ")?;
        }
        for (i, a) in self.rhs.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// Construct the four mappings of the paper's Example 2, used throughout the
/// test suites and examples of this workspace.
pub fn example2_mappings() -> Vec<Tgd> {
    vec![
        Tgd::parse("m1", "G(i, c, n) -> B(i, n)").expect("m1 is well-formed"),
        Tgd::parse("m2", "G(i, c, n) -> U(n, c)").expect("m2 is well-formed"),
        Tgd::parse("m3", "B(i, n) -> U(n, c)").expect("m3 is well-formed"),
        Tgd::parse("m4", "B(i, c), U(n, c) -> B(i, n)").expect("m4 is well-formed"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_example_2() {
        let ms = example2_mappings();
        assert_eq!(ms.len(), 4);
        assert_eq!(ms[0].lhs.len(), 1);
        assert_eq!(ms[3].lhs.len(), 2);
        assert_eq!(ms[3].rhs.len(), 1);
        assert_eq!(ms[0].name, "m1");
    }

    #[test]
    fn variable_classification() {
        let m3 = Tgd::parse("m3", "B(i, n) -> U(n, c)").unwrap();
        assert_eq!(
            m3.frontier_variables().into_iter().collect::<Vec<_>>(),
            vec!["n"]
        );
        assert_eq!(
            m3.existential_variables().into_iter().collect::<Vec<_>>(),
            vec!["c"]
        );
        assert!(!m3.is_full());

        let m1 = Tgd::parse("m1", "G(i, c, n) -> B(i, n)").unwrap();
        assert!(m1.is_full());
        assert!(m1.existential_variables().is_empty());
        let front = m1.frontier_variables();
        assert!(front.contains("i") && front.contains("n") && !front.contains("c"));
    }

    #[test]
    fn source_and_target_relations() {
        let m4 = Tgd::parse("m4", "B(i, c) & U(n, c) -> B(i, n)").unwrap();
        let src = m4.source_relations();
        assert!(src.contains("B") && src.contains("U"));
        assert_eq!(
            m4.target_relations().into_iter().collect::<Vec<_>>(),
            vec!["B"]
        );
    }

    #[test]
    fn display_uses_logical_notation() {
        let m3 = Tgd::parse("m3", "B(i, n) -> U(n, c)").unwrap();
        let s = m3.to_string();
        assert!(s.contains("(m3)"));
        assert!(s.contains("∃c"));
        assert!(s.contains("→"));
        let m1 = Tgd::parse("m1", "G(i, c, n) -> B(i, n)").unwrap();
        assert!(!m1.to_string().contains('∃'));
    }

    #[test]
    fn unicode_arrow_and_multi_atom_rhs() {
        let m = Tgd::parse("mx", "G(i, c, n) → B(i, n), U(n, c)").unwrap();
        assert_eq!(m.rhs.len(), 2);
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            Tgd::parse("bad", "G(i, c, n)").unwrap_err(),
            MappingError::Parse { .. }
        ));
        assert!(matches!(
            Tgd::parse("bad", "-> B(i, n)").unwrap_err(),
            MappingError::InvalidTgd { .. }
        ));
        assert!(matches!(
            Tgd::parse("bad", "G(i, c, n) ->").unwrap_err(),
            MappingError::InvalidTgd { .. }
        ));
        assert!(matches!(
            Tgd::parse("bad", "G(i, c n) -> B(i, n)").unwrap_err(),
            MappingError::Parse { .. }
        ));
    }

    #[test]
    fn constants_are_allowed_in_tgds() {
        let m = Tgd::parse("mc", "G(i, 5, n) -> B(i, \"fixed\")").unwrap();
        assert_eq!(m.lhs[0].terms.len(), 3);
        assert!(m.is_full());
    }
}
