//! Inverse rules for goal-directed derivation testing (paper §4.1.3).
//!
//! Given a set of tuples whose derivations we want to check (loaded into
//! `R__chk` relations), the *support program* traverses the stored
//! provenance relations **backwards**: it marks every provenance row that
//! could participate in a derivation of a checked tuple (`P_m__reach`), and
//! transitively every source tuple such a row consumed (`S__chk` for the
//! source relations). Running the support program to fixpoint therefore
//! computes "the set of tuples from which the original `R__chk` relations
//! could have been derived" — the backward phase of the paper's derivation
//! test. The forward validation phase (re-running the mappings over the
//! reachable edb tuples) is performed by `orchestra-core` using the ordinary
//! update-exchange program restricted to the reachable set, or — equivalently
//! and more cheaply at our scale — using the provenance graph.

use orchestra_datalog::atom::Atom;
use orchestra_datalog::program::Program;
use orchestra_datalog::rule::Rule;
use orchestra_datalog::term::Term;
use orchestra_storage::schema::{internal_name, InternalRole};

use crate::compile::TemplateTerm;
use crate::internal::MappingSystem;

/// Suffix of the relations holding the tuples whose derivation is being
/// checked.
pub const CHECK_SUFFIX: &str = "__chk";
/// Suffix of the relations holding provenance rows reachable backwards from
/// the checked tuples.
pub const REACH_SUFFIX: &str = "__reach";

/// The `R__chk` relation name for `relation`.
pub fn check_relation(relation: &str) -> String {
    format!("{relation}{CHECK_SUFFIX}")
}

/// The `P__reach` relation name for a provenance relation.
pub fn reach_relation(relation: &str) -> String {
    format!("{relation}{REACH_SUFFIX}")
}

/// Build the support (inverse-rule) program for a mapping system.
///
/// For every provenance table `P_m` of every compiled mapping, with columns
/// `x̄ȳ`, target atoms `T(…)` and source atoms `S(…)`:
///
/// ```text
/// P_m__reach(x̄, ȳ) :- P_m(x̄, ȳ), T__chk(frontier columns, _fresh…).
/// S__chk(source columns)  :- P_m__reach(x̄, ȳ).          (one per source atom)
/// ```
///
/// and for every logical relation `R` (whose output table is derived from
/// its input table and its local contributions):
///
/// ```text
/// R_i__chk(x̄) :- R_o__chk(x̄).
/// R_l__chk(x̄) :- R_o__chk(x̄).
/// ```
pub fn support_program(system: &MappingSystem) -> Program {
    let mut rules: Vec<Rule> = Vec::new();

    for compiled in &system.compiled {
        let column_vars: Vec<Term> = compiled
            .columns
            .iter()
            .map(|c| Term::var(c.clone()))
            .collect();

        for table in &compiled.provenance {
            let reach = reach_relation(&table.relation);
            // One backward rule per target atom of this provenance table.
            for &ti in &table.target_indexes {
                let template = &compiled.targets[ti];
                let mut fresh = 0usize;
                let chk_terms: Vec<Term> = template
                    .terms
                    .iter()
                    .map(|t| match t {
                        TemplateTerm::Col(c) => Term::var(compiled.columns[*c].clone()),
                        TemplateTerm::Const(v) => Term::Const(v.clone()),
                        TemplateTerm::Skolem(_, _) => {
                            // The labeled-null position cannot be matched
                            // syntactically; the provenance row determines it,
                            // so we join only on the frontier columns and use
                            // a fresh variable here (paper §4.1.3: "fill in
                            // the possible values for f̄(x̄)").
                            fresh += 1;
                            Term::var(format!("__any{fresh}"))
                        }
                    })
                    .collect();
                rules.push(Rule::positive(
                    Atom::new(reach.clone(), column_vars.clone()),
                    vec![
                        Atom::new(table.relation.clone(), column_vars.clone()),
                        Atom::new(check_relation(&template.relation), chk_terms),
                    ],
                ));
            }
            // Backward propagation to every source atom.
            for source in &compiled.sources {
                let src_terms: Vec<Term> = source
                    .terms
                    .iter()
                    .map(|t| match t {
                        TemplateTerm::Col(c) => Term::var(compiled.columns[*c].clone()),
                        TemplateTerm::Const(v) => Term::Const(v.clone()),
                        TemplateTerm::Skolem(_, _) => {
                            unreachable!("source templates never contain Skolems")
                        }
                    })
                    .collect();
                rules.push(Rule::positive(
                    Atom::new(check_relation(&source.relation), src_terms),
                    vec![Atom::new(reach.clone(), column_vars.clone())],
                ));
            }
        }
    }

    // Internal rules: a checked output tuple may come from the input table or
    // from the local contributions table.
    for schema in system.logical_schemas.values() {
        let vars: Vec<String> = (0..schema.arity()).map(|i| format!("x{i}")).collect();
        let var_refs: Vec<&str> = vars.iter().map(String::as_str).collect();
        let out_chk = Atom::with_vars(
            check_relation(&internal_name(schema.name(), InternalRole::Output)),
            &var_refs,
        );
        for role in [InternalRole::Input, InternalRole::LocalContributions] {
            rules.push(Rule::positive(
                Atom::with_vars(
                    check_relation(&internal_name(schema.name(), role)),
                    &var_refs,
                ),
                vec![out_chk.clone()],
            ));
        }
    }

    Program::from_rules(rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::ProvenanceEncoding;
    use crate::tgd::example2_mappings;
    use orchestra_datalog::{EngineKind, Evaluator};
    use orchestra_storage::{tuple::int_tuple, Database, RelationSchema};

    fn example_system() -> MappingSystem {
        MappingSystem::build(
            vec![
                RelationSchema::new("G", &["id", "can", "nam"]),
                RelationSchema::new("B", &["id", "nam"]),
                RelationSchema::new("U", &["nam", "can"]),
            ],
            example2_mappings(),
            ProvenanceEncoding::CompositePerTgd,
        )
        .unwrap()
    }

    #[test]
    fn support_program_is_valid_datalog() {
        let system = example_system();
        let p = support_program(&system);
        p.validate().unwrap();
        p.stratify().unwrap();
        let text = p.to_string();
        assert!(text.contains("P_m1__reach"));
        assert!(text.contains("B_i__chk"));
        assert!(text.contains("B_l__chk(x0, x1) :- B_o__chk(x0, x1)."));
    }

    #[test]
    fn backward_reachability_marks_exactly_the_ancestors() {
        let system = example_system();
        let mut db = Database::new();
        system.register_relations(&mut db).unwrap();

        // Base data of Example 3 in the local contribution tables.
        db.insert("G_l", int_tuple(&[1, 2, 3])).unwrap();
        db.insert("G_l", int_tuple(&[3, 5, 2])).unwrap();
        db.insert("B_l", int_tuple(&[3, 5])).unwrap();
        db.insert("U_l", int_tuple(&[2, 5])).unwrap();

        // Run the forward update-exchange program.
        let mut eval = Evaluator::new(EngineKind::Pipelined);
        eval.run(&system.program, &mut db).unwrap();
        assert!(db.relation("B_o").unwrap().contains(&int_tuple(&[3, 2])));

        // Check the derivation of B_o(3, 2).
        let chk_schema = RelationSchema::new("B_o__chk", &["id", "nam"]);
        db.create_relation(chk_schema).unwrap();
        db.insert("B_o__chk", int_tuple(&[3, 2])).unwrap();

        let support = support_program(&system);
        eval.run(&support, &mut db).unwrap();

        // G_l's tuple (3,5,2) supports it via m1; (1,2,3) does not.
        let g_chk = db.relation("G_l__chk").unwrap();
        assert!(g_chk.contains(&int_tuple(&[3, 5, 2])));
        assert!(!g_chk.contains(&int_tuple(&[1, 2, 3])));
        // The m4 path marks B(3,5) and U(2,5) as well.
        assert!(db
            .relation("B_l__chk")
            .unwrap()
            .contains(&int_tuple(&[3, 5])));
        assert!(db
            .relation("U_l__chk")
            .unwrap()
            .contains(&int_tuple(&[2, 5])));
        // Provenance rows on the path are marked reachable.
        assert!(!db.relation("P_m1__reach").unwrap().is_empty());
        assert!(!db.relation("P_m4__reach").unwrap().is_empty());
    }
}
