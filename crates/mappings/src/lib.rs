//! # orchestra-mappings
//!
//! Schema mappings for the ORCHESTRA CDSS, implementing §3 and §4.1 of
//! *Update Exchange with Mappings and Provenance* (VLDB 2007):
//!
//! * [`Tgd`]s — tuple-generating dependencies / GLAV mappings relating
//!   relations of different peers, with a small text syntax mirroring the
//!   paper's notation (`G(i,c,n) -> B(i,n)`);
//! * the **weak acyclicity** test (§3.1) that the CDSS imposes on the
//!   mapping topology so that update translation terminates;
//! * the **internal schema** expansion of Figure 2: every logical relation
//!   `R` becomes `R_l` (local contributions), `R_r` (rejections), `R_i`
//!   (input), and `R_o` (curated output), and the user-level tgds are
//!   rewritten over the internal relations;
//! * **compilation to datalog with Skolem functions** (§4.1.1), including the
//!   relational provenance encoding of §4.1.2: each tgd `m` gets a
//!   provenance relation `P_m` holding one row per rule instantiation, a
//!   rule `P_m(x̄,ȳ) :- φ(x̄,ȳ)`, and projection rules deriving the actual
//!   target tuples (with labeled nulls) from `P_m`;
//! * **inverse rules** (§4.1.3) computing, goal-directedly, the set of
//!   tuples and provenance rows that support a given set of tuples — the
//!   backward phase of derivation testing used by incremental deletion.
//!
//! The compiled artifacts retain enough structure ([`CompiledMapping`],
//! [`AtomTemplate`]) for the CDSS layer to reconstruct, from every stored
//! provenance row, the exact source and target tuples of that rule
//! instantiation — which is how the provenance *graph* of §3.2 is
//! materialised.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod acyclicity;
pub mod compile;
pub mod error;
pub mod internal;
pub mod inverse;
pub mod tgd;

pub use acyclicity::{check_weak_acyclicity, WeakAcyclicityReport};
pub use compile::{AtomTemplate, CompiledMapping, ProvenanceEncoding, TemplateTerm};
pub use error::MappingError;
pub use internal::{internal_rules_for_relation, MappingSystem};
pub use inverse::support_program;
pub use tgd::Tgd;

/// Convenience result alias for mapping operations.
pub type Result<T> = std::result::Result<T, MappingError>;
