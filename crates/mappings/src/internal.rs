//! The internal schema and the complete update-exchange program.
//!
//! Per §3.1 (Figure 2) every logical relation `R` of a peer is implemented by
//! four internal relations sharing `R`'s attributes:
//!
//! * `R_l` — local contributions,
//! * `R_r` — local rejections (curation deletions of imported data),
//! * `R_i` — input table (tuples produced by update translation),
//! * `R_o` — curated output table (what users query and what outgoing
//!   mappings read).
//!
//! The user-level mappings `M` are rewritten into internal mappings `M'`
//! over these relations, and for each relation the rules
//!
//! ```text
//! (iR)  R_o(x̄) :- R_i(x̄), not R_r(x̄).
//! (lR)  R_o(x̄) :- R_l(x̄).
//! ```
//!
//! are added. Trust conditions (§3.3) are applied by `orchestra-core` while
//! deriving the provenance relations and input tables, so the trusted table
//! `R_t` always coincides with `R_i` and is elided from the stored schema;
//! see the DESIGN.md notes on this simplification.

use std::collections::BTreeMap;

use orchestra_datalog::atom::{Atom, Literal};
use orchestra_datalog::program::Program;
use orchestra_datalog::rule::Rule;
use orchestra_storage::schema::{internal_name, InternalRole};
use orchestra_storage::{Database, RelationSchema};

use crate::acyclicity::{check_weak_acyclicity, WeakAcyclicityReport};
use crate::compile::{compile_mapping, CompiledMapping, ProvenanceEncoding, SkolemAllocator};
use crate::error::MappingError;
use crate::tgd::Tgd;
use crate::Result;

/// The internal datalog rules (iR) and (lR) for one logical relation.
pub fn internal_rules_for_relation(name: &str, arity: usize) -> Vec<Rule> {
    let vars: Vec<String> = (0..arity).map(|i| format!("x{i}")).collect();
    let var_refs: Vec<&str> = vars.iter().map(String::as_str).collect();
    let output = Atom::with_vars(internal_name(name, InternalRole::Output), &var_refs);
    let input = Atom::with_vars(internal_name(name, InternalRole::Input), &var_refs);
    let rejections = Atom::with_vars(internal_name(name, InternalRole::Rejections), &var_refs);
    let local = Atom::with_vars(
        internal_name(name, InternalRole::LocalContributions),
        &var_refs,
    );
    vec![
        // (iR): imported data survives unless locally rejected.
        Rule::new(
            output.clone(),
            vec![Literal::positive(input), Literal::negative(rejections)],
        ),
        // (lR): local contributions always appear in the output.
        Rule::positive(output, vec![local]),
    ]
}

/// A fully analysed and compiled set of schema mappings over a set of
/// logical relations — everything `orchestra-core` needs to run update
/// exchange.
#[derive(Debug, Clone)]
pub struct MappingSystem {
    /// The logical (user-level) relation schemas, keyed by name.
    pub logical_schemas: BTreeMap<String, RelationSchema>,
    /// The user-level tgds.
    pub tgds: Vec<Tgd>,
    /// The compiled form of each tgd (same order as `tgds`).
    pub compiled: Vec<CompiledMapping>,
    /// The complete update-exchange datalog program: all mapping rules plus
    /// the internal (iR)/(lR) rules of every relation.
    pub program: Program,
    /// The weak-acyclicity analysis of the tgds.
    pub acyclicity: WeakAcyclicityReport,
    /// The provenance encoding used.
    pub encoding: ProvenanceEncoding,
}

impl MappingSystem {
    /// Build a mapping system: validate the tgds against the schemas, check
    /// weak acyclicity, compile every mapping, and assemble the
    /// update-exchange program.
    pub fn build(
        schemas: Vec<RelationSchema>,
        tgds: Vec<Tgd>,
        encoding: ProvenanceEncoding,
    ) -> Result<Self> {
        Self::build_inner(schemas, tgds, encoding, true)
    }

    /// Like [`MappingSystem::build`], but record the weak-acyclicity analysis
    /// without enforcing it.
    ///
    /// `orchestra-core` uses this entry point so the program-level static
    /// analyzer (`orchestra-analyze`) gets to see value-inventing cycles and
    /// reject them with a full `E001` diagnostic — the offending rule chain —
    /// instead of the tgd-level [`MappingError::NotWeaklyAcyclic`] bail here.
    /// Schema validation, compilation, rule safety and stratification are
    /// still enforced.
    pub fn build_unchecked(
        schemas: Vec<RelationSchema>,
        tgds: Vec<Tgd>,
        encoding: ProvenanceEncoding,
    ) -> Result<Self> {
        Self::build_inner(schemas, tgds, encoding, false)
    }

    fn build_inner(
        schemas: Vec<RelationSchema>,
        tgds: Vec<Tgd>,
        encoding: ProvenanceEncoding,
        enforce_acyclicity: bool,
    ) -> Result<Self> {
        let logical_schemas: BTreeMap<String, RelationSchema> = schemas
            .into_iter()
            .map(|s| (s.name().to_string(), s))
            .collect();

        // Validate relations and arities used by the tgds.
        for tgd in &tgds {
            for atom in tgd.lhs.iter().chain(tgd.rhs.iter()) {
                match logical_schemas.get(&atom.relation) {
                    None => return Err(MappingError::UnknownRelation(atom.relation.clone())),
                    Some(schema) if schema.arity() != atom.arity() => {
                        return Err(MappingError::ArityMismatch {
                            relation: atom.relation.clone(),
                            expected: schema.arity(),
                            actual: atom.arity(),
                        })
                    }
                    Some(_) => {}
                }
            }
        }

        let acyclicity = if enforce_acyclicity {
            check_weak_acyclicity(&tgds)?
        } else {
            crate::acyclicity::analyze(&tgds)
        };

        let mut allocator = SkolemAllocator::new();
        let mut compiled = Vec::with_capacity(tgds.len());
        let mut program = Program::new();
        for tgd in &tgds {
            let c = compile_mapping(tgd, encoding, &mut allocator, true)?;
            for r in &c.rules {
                program.push(r.clone());
            }
            compiled.push(c);
        }
        for schema in logical_schemas.values() {
            for r in internal_rules_for_relation(schema.name(), schema.arity()) {
                program.push(r);
            }
        }
        program.validate()?;
        // The program must be stratifiable (negation only over rejection
        // tables, which are edbs, so this always succeeds for valid input).
        program.stratify()?;

        Ok(MappingSystem {
            logical_schemas,
            tgds,
            compiled,
            program,
            acyclicity,
            encoding,
        })
    }

    /// Create every internal relation (`R_l`, `R_r`, `R_i`, `R_o`) and every
    /// provenance relation in the database, if not already present.
    pub fn register_relations(&self, db: &mut Database) -> Result<()> {
        for schema in self.logical_schemas.values() {
            for role in [
                InternalRole::LocalContributions,
                InternalRole::Rejections,
                InternalRole::Input,
                InternalRole::Output,
            ] {
                db.create_relation_if_absent(schema.internal(role));
            }
        }
        for c in &self.compiled {
            for ps in c.provenance_schemas() {
                db.create_relation_if_absent(ps);
            }
        }
        Ok(())
    }

    /// Find a compiled mapping by name.
    pub fn mapping(&self, name: &str) -> Option<&CompiledMapping> {
        self.compiled.iter().find(|c| c.name == name)
    }

    /// Find the compiled mapping owning a given provenance relation, with the
    /// index of that provenance table within the mapping.
    pub fn mapping_for_provenance_relation(
        &self,
        relation: &str,
    ) -> Option<(&CompiledMapping, usize)> {
        for c in &self.compiled {
            for (i, p) in c.provenance.iter().enumerate() {
                if p.relation == relation {
                    return Some((c, i));
                }
            }
        }
        None
    }

    /// Names of all provenance relations.
    pub fn provenance_relations(&self) -> Vec<String> {
        self.compiled
            .iter()
            .flat_map(|c| c.provenance.iter().map(|p| p.relation.clone()))
            .collect()
    }

    /// Names of all logical relations.
    pub fn logical_relations(&self) -> Vec<String> {
        self.logical_schemas.keys().cloned().collect()
    }

    /// Total number of datalog rules in the update-exchange program.
    pub fn rule_count(&self) -> usize {
        self.program.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tgd::example2_mappings;

    fn example_schemas() -> Vec<RelationSchema> {
        vec![
            RelationSchema::new("G", &["id", "can", "nam"]),
            RelationSchema::new("B", &["id", "nam"]),
            RelationSchema::new("U", &["nam", "can"]),
        ]
    }

    #[test]
    fn internal_rules_shape() {
        let rules = internal_rules_for_relation("B", 2);
        assert_eq!(rules.len(), 2);
        assert_eq!(
            rules[0].to_string(),
            "B_o(x0, x1) :- B_i(x0, x1), not B_r(x0, x1)."
        );
        assert_eq!(rules[1].to_string(), "B_o(x0, x1) :- B_l(x0, x1).");
        for r in &rules {
            r.validate().unwrap();
        }
    }

    #[test]
    fn build_example_2_system() {
        let system = MappingSystem::build(
            example_schemas(),
            example2_mappings(),
            ProvenanceEncoding::CompositePerTgd,
        )
        .unwrap();
        assert!(system.acyclicity.is_weakly_acyclic());
        assert_eq!(system.compiled.len(), 4);
        // 4 mappings × 2 rules + 3 relations × 2 internal rules = 14.
        assert_eq!(system.rule_count(), 14);
        assert_eq!(system.provenance_relations().len(), 4);
        assert_eq!(system.logical_relations(), vec!["B", "G", "U"]);
        assert!(system.mapping("m3").is_some());
        assert!(system.mapping("nope").is_none());
        let (m, idx) = system.mapping_for_provenance_relation("P_m4").unwrap();
        assert_eq!(m.name, "m4");
        assert_eq!(idx, 0);
        assert!(system.mapping_for_provenance_relation("P_zzz").is_none());
    }

    #[test]
    fn register_relations_creates_internal_and_provenance_tables() {
        let system = MappingSystem::build(
            example_schemas(),
            example2_mappings(),
            ProvenanceEncoding::CompositePerTgd,
        )
        .unwrap();
        let mut db = Database::new();
        system.register_relations(&mut db).unwrap();
        for rel in ["B_l", "B_r", "B_i", "B_o", "G_o", "U_i", "P_m1", "P_m4"] {
            assert!(db.has_relation(rel), "missing {rel}");
        }
        // Internal relations share the logical schema's attributes.
        assert_eq!(
            db.relation("B_o").unwrap().schema().attributes(),
            &["id".to_string(), "nam".to_string()]
        );
        // Idempotent.
        system.register_relations(&mut db).unwrap();
    }

    #[test]
    fn unknown_relations_and_arity_mismatches_are_rejected() {
        let err = MappingSystem::build(
            example_schemas(),
            vec![Tgd::parse("m", "X(a) -> B(a, a)").unwrap()],
            ProvenanceEncoding::CompositePerTgd,
        )
        .unwrap_err();
        assert!(matches!(err, MappingError::UnknownRelation(r) if r == "X"));

        let err = MappingSystem::build(
            example_schemas(),
            vec![Tgd::parse("m", "G(a, b) -> B(a, b)").unwrap()],
            ProvenanceEncoding::CompositePerTgd,
        )
        .unwrap_err();
        assert!(matches!(err, MappingError::ArityMismatch { relation, .. } if relation == "G"));
    }

    #[test]
    fn non_weakly_acyclic_sets_are_rejected_at_build() {
        let schemas = vec![RelationSchema::new("R", &["a", "b"])];
        let err = MappingSystem::build(
            schemas,
            vec![Tgd::parse("m", "R(x, y) -> R(y, z)").unwrap()],
            ProvenanceEncoding::CompositePerTgd,
        )
        .unwrap_err();
        assert!(matches!(err, MappingError::NotWeaklyAcyclic { .. }));
    }

    #[test]
    fn build_unchecked_records_but_does_not_enforce_acyclicity() {
        let schemas = vec![RelationSchema::new("R", &["a", "b"])];
        let system = MappingSystem::build_unchecked(
            schemas,
            vec![Tgd::parse("m", "R(x, y) -> R(y, z)").unwrap()],
            ProvenanceEncoding::CompositePerTgd,
        )
        .unwrap();
        // The report still knows the set diverges; it is the caller's job
        // (orchestra-core's analyzer gate) to reject it with diagnostics.
        assert!(!system.acyclicity.is_weakly_acyclic());
        assert_eq!(system.compiled.len(), 1);
    }

    #[test]
    fn per_head_atom_encoding_builds_too() {
        let system = MappingSystem::build(
            example_schemas(),
            example2_mappings(),
            ProvenanceEncoding::PerHeadAtom,
        )
        .unwrap();
        assert_eq!(system.provenance_relations().len(), 4);
        assert_eq!(system.encoding, ProvenanceEncoding::PerHeadAtom);
    }
}
