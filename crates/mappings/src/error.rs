//! Error type for schema-mapping operations.

use std::fmt;

use orchestra_datalog::DatalogError;
use orchestra_storage::StorageError;

/// Errors raised while parsing, validating or compiling schema mappings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingError {
    /// The tgd text could not be parsed.
    Parse {
        /// Description of the problem.
        message: String,
        /// The offending input.
        input: String,
    },
    /// A tgd is malformed (e.g. empty LHS or RHS, or a constant-only LHS).
    InvalidTgd {
        /// The mapping's name.
        mapping: String,
        /// Description of the problem.
        message: String,
    },
    /// The set of mappings is not weakly acyclic, so chasing/datalog
    /// evaluation is not guaranteed to terminate (paper §3.1).
    NotWeaklyAcyclic {
        /// A description of a position cycle through a special edge.
        cycle: String,
    },
    /// A tgd refers to a relation that is not declared in any peer schema.
    UnknownRelation(String),
    /// A tgd uses a relation with the wrong arity.
    ArityMismatch {
        /// The relation name.
        relation: String,
        /// Arity declared by the schema.
        expected: usize,
        /// Arity used in the tgd.
        actual: usize,
    },
    /// Error from the datalog layer.
    Datalog(DatalogError),
    /// Error from the storage layer.
    Storage(StorageError),
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::Parse { message, input } => {
                write!(f, "cannot parse tgd `{input}`: {message}")
            }
            MappingError::InvalidTgd { mapping, message } => {
                write!(f, "invalid tgd `{mapping}`: {message}")
            }
            MappingError::NotWeaklyAcyclic { cycle } => {
                write!(f, "mapping set is not weakly acyclic: {cycle}")
            }
            MappingError::UnknownRelation(r) => {
                write!(
                    f,
                    "tgd mentions relation `{r}` which is not declared by any peer"
                )
            }
            MappingError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "relation `{relation}` has arity {expected} but is used with {actual} arguments"
            ),
            MappingError::Datalog(e) => write!(f, "datalog error: {e}"),
            MappingError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for MappingError {}

impl From<DatalogError> for MappingError {
    fn from(e: DatalogError) -> Self {
        MappingError::Datalog(e)
    }
}

impl From<StorageError> for MappingError {
    fn from(e: StorageError) -> Self {
        MappingError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        let e = MappingError::NotWeaklyAcyclic {
            cycle: "B.1 -*-> U.1 -> B.1".into(),
        };
        assert!(e.to_string().contains("weakly acyclic"));
        let e = MappingError::ArityMismatch {
            relation: "G".into(),
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains("arity 3"));
        let e: MappingError = StorageError::UnknownRelation("X".into()).into();
        assert!(matches!(e, MappingError::Storage(_)));
        let e: MappingError = DatalogError::MissingRelation("X".into()).into();
        assert!(matches!(e, MappingError::Datalog(_)));
    }
}
