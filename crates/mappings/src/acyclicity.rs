//! The weak acyclicity test (paper §3.1, following Fagin et al.'s data
//! exchange work).
//!
//! Build the *position dependency graph*: nodes are pairs (relation,
//! attribute position). For every tgd, every frontier variable `x` occurring
//! in LHS position `(R, i)`, and every occurrence of `x` in RHS position
//! `(S, j)`, add a **regular** edge `(R,i) → (S,j)`. Additionally, for every
//! existential variable `z` occurring in RHS position `(S, k)`, add a
//! **special** edge `(R,i) → (S,k)` (the value at `(R,i)` may cause the
//! creation of a fresh labeled null at `(S,k)`).
//!
//! The mapping set is *weakly acyclic* iff the graph has no cycle that goes
//! through a special edge. Weak acyclicity guarantees that the chase — and
//! hence our datalog fixpoint with frontier-parameterised Skolem functions —
//! terminates in polynomial time (Theorem 3.1 of the paper).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::tgd::Tgd;
use crate::{MappingError, Result};

/// A node of the position dependency graph: (relation, attribute position).
pub type Position = (String, usize);

/// The outcome of a weak-acyclicity analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeakAcyclicityReport {
    /// Regular edges of the position dependency graph.
    pub regular_edges: BTreeSet<(Position, Position)>,
    /// Special edges of the position dependency graph.
    pub special_edges: BTreeSet<(Position, Position)>,
    /// `None` if the set is weakly acyclic, otherwise a human-readable
    /// description of a special edge that lies on a cycle.
    pub violation: Option<String>,
}

impl WeakAcyclicityReport {
    /// Is the analysed mapping set weakly acyclic?
    pub fn is_weakly_acyclic(&self) -> bool {
        self.violation.is_none()
    }
}

impl fmt::Display for WeakAcyclicityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "position dependency graph: {} regular edges, {} special edges",
            self.regular_edges.len(),
            self.special_edges.len()
        )?;
        match &self.violation {
            None => writeln!(f, "weakly acyclic: yes"),
            Some(v) => writeln!(f, "weakly acyclic: NO ({v})"),
        }
    }
}

/// Analyse a set of tgds for weak acyclicity.
pub fn analyze(tgds: &[Tgd]) -> WeakAcyclicityReport {
    let mut regular: BTreeSet<(Position, Position)> = BTreeSet::new();
    let mut special: BTreeSet<(Position, Position)> = BTreeSet::new();

    for tgd in tgds {
        let frontier = tgd.frontier_variables();
        let existential = tgd.existential_variables();

        // Positions of each frontier variable on the LHS.
        let mut lhs_positions: BTreeMap<&str, Vec<Position>> = BTreeMap::new();
        for atom in &tgd.lhs {
            for (i, term) in atom.terms.iter().enumerate() {
                if let Some(v) = term.as_var() {
                    if frontier.contains(v) {
                        lhs_positions
                            .entry(v)
                            .or_default()
                            .push((atom.relation.clone(), i));
                    }
                }
            }
        }

        // RHS occurrences.
        for atom in &tgd.rhs {
            for (j, term) in atom.terms.iter().enumerate() {
                let Some(v) = term.as_var() else { continue };
                if frontier.contains(v) {
                    // Regular edges from every LHS position of v.
                    for from in lhs_positions.get(v).into_iter().flatten() {
                        regular.insert((from.clone(), (atom.relation.clone(), j)));
                    }
                } else if existential.contains(v) {
                    // Special edges from every LHS position of every frontier
                    // variable.
                    for positions in lhs_positions.values() {
                        for from in positions {
                            special.insert((from.clone(), (atom.relation.clone(), j)));
                        }
                    }
                }
            }
        }
    }

    // All edges (regular ∪ special) for reachability.
    let mut adjacency: BTreeMap<Position, Vec<Position>> = BTreeMap::new();
    for (from, to) in regular.iter().chain(special.iter()) {
        adjacency.entry(from.clone()).or_default().push(to.clone());
    }

    // A special edge u -> v lies on a cycle iff u is reachable from v.
    let mut violation = None;
    for (u, v) in &special {
        if reachable(&adjacency, v, u) {
            violation = Some(format!(
                "special edge {}.{} -*-> {}.{} lies on a cycle",
                u.0, u.1, v.0, v.1
            ));
            break;
        }
    }

    WeakAcyclicityReport {
        regular_edges: regular,
        special_edges: special,
        violation,
    }
}

/// Check weak acyclicity, returning an error if violated.
pub fn check_weak_acyclicity(tgds: &[Tgd]) -> Result<WeakAcyclicityReport> {
    let report = analyze(tgds);
    match &report.violation {
        None => Ok(report),
        Some(v) => Err(MappingError::NotWeaklyAcyclic { cycle: v.clone() }),
    }
}

fn reachable(
    adjacency: &BTreeMap<Position, Vec<Position>>,
    from: &Position,
    to: &Position,
) -> bool {
    let mut visited: BTreeSet<&Position> = BTreeSet::new();
    let mut stack: Vec<&Position> = vec![from];
    while let Some(p) = stack.pop() {
        if p == to {
            return true;
        }
        if !visited.insert(p) {
            continue;
        }
        if let Some(next) = adjacency.get(p) {
            stack.extend(next.iter());
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tgd::example2_mappings;

    #[test]
    fn example_2_is_weakly_acyclic() {
        // The paper notes that (m3) completes a cycle but the set is still
        // weakly acyclic.
        let report = analyze(&example2_mappings());
        assert!(report.is_weakly_acyclic(), "{report}");
        assert!(!report.special_edges.is_empty());
        assert!(check_weak_acyclicity(&example2_mappings()).is_ok());
    }

    #[test]
    fn self_feeding_existential_is_rejected() {
        // R(x, y) -> R(y, z): the existential z lands in R.1, and R.1 feeds
        // back into the premise, so fresh nulls beget fresh nulls forever.
        let tgds = vec![Tgd::parse("m", "R(x, y) -> R(y, z)").unwrap()];
        let report = analyze(&tgds);
        assert!(!report.is_weakly_acyclic());
        assert!(matches!(
            check_weak_acyclicity(&tgds).unwrap_err(),
            MappingError::NotWeaklyAcyclic { .. }
        ));
    }

    #[test]
    fn two_step_special_cycle_is_detected() {
        // A -> B with existential, B -> A copying: special edge A.0 -*-> B.1,
        // regular edge B.1 -> A.0 closes the cycle.
        let tgds = vec![
            Tgd::parse("m1", "A(x) -> B(x, z)").unwrap(),
            Tgd::parse("m2", "B(x, y) -> A(y)").unwrap(),
        ];
        assert!(!analyze(&tgds).is_weakly_acyclic());
    }

    #[test]
    fn full_tgd_cycles_are_fine() {
        // Cycles without existentials (full tgds) are weakly acyclic.
        let tgds = vec![
            Tgd::parse("m1", "A(x, y) -> B(y, x)").unwrap(),
            Tgd::parse("m2", "B(x, y) -> A(y, x)").unwrap(),
        ];
        let report = analyze(&tgds);
        assert!(report.is_weakly_acyclic());
        assert!(report.special_edges.is_empty());
        assert!(!report.regular_edges.is_empty());
    }

    #[test]
    fn report_display() {
        let ok = analyze(&example2_mappings());
        assert!(ok.to_string().contains("yes"));
        let bad = analyze(&[Tgd::parse("m", "R(x, y) -> R(y, z)").unwrap()]);
        assert!(bad.to_string().contains("NO"));
    }
}
