//! Update-exchange strategies (paper §4 and §6):
//!
//! * [`Cdss::recompute_all`] — full, non-incremental recomputation of every
//!   derived relation from the base data (the "complete recomputation"
//!   baseline of Figure 4);
//! * [`Cdss::apply_insertions_incremental`] — incremental insertion
//!   propagation via delta rules (§4.2);
//! * [`Cdss::apply_deletions_incremental`] — the provenance-guided deletion
//!   propagation algorithm of Figure 3: apply the deletion delta, find the
//!   affected tuples, and keep only those still derivable from base data
//!   (the derivability test is answered goal-directedly on the provenance
//!   graph, the in-memory form of the inverse-rules test of §4.1.3);
//! * [`Cdss::apply_deletions_dred`] — the DRed baseline: over-delete
//!   everything transitively reachable from the deleted tuples, then
//!   re-derive survivors from the remaining data;
//! * [`Cdss::update_exchange`] / [`Cdss::update_exchange_all`] — the
//!   user-facing operation: publish a peer's edit log and propagate it
//!   incrementally.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::time::Instant;

use orchestra_datalog::delta::deletion_candidates;
use orchestra_datalog::DerivationFilter;
use orchestra_provenance::ProvenanceToken;
use orchestra_storage::schema::{internal_name, InternalRole};
use orchestra_storage::Tuple;

use crate::cdss::{
    all_trust_all, logical_of_input, make_evaluator, trust_filter, Cdss, PublishedChanges,
};
use crate::error::CdssError;
use crate::peer::PeerId;
use crate::report::{ExchangeReport, ExchangeStrategy, PublishReport};
use crate::Result;

/// A batch of tuples per logical relation, as accepted by the incremental
/// propagation APIs.
type TupleBatch = BTreeMap<String, Vec<Tuple>>;

/// The `exchange_phase_seconds{phase=...}` histogram for one exchange
/// phase (the per-phase cost breakdown the paper's §6 reasons about).
fn phase_histogram(phase: &'static str) -> orchestra_obs::Histogram {
    orchestra_obs::histogram_with("exchange_phase_seconds", &[("phase", phase)])
}

impl Cdss {
    /// Validate that `relation` is a known logical relation and every tuple
    /// matches its arity.
    fn check_logical_batch(&self, relation: &str, tuples: &[Tuple]) -> Result<()> {
        let Some(schema) = self.mapping_system().logical_schemas.get(relation).cloned() else {
            return Err(CdssError::UnknownMapping(format!(
                "relation `{relation}` is not a logical relation of any peer"
            )));
        };
        for t in tuples {
            if t.arity() != schema.arity() {
                return Err(CdssError::ArityMismatch {
                    relation: relation.to_string(),
                    expected: schema.arity(),
                    actual: t.arity(),
                });
            }
        }
        Ok(())
    }

    /// Fully recompute every derived relation (input tables, output tables,
    /// provenance relations) from the local-contribution and rejection
    /// tables, then rebuild the provenance graph.
    pub fn recompute_all(&mut self) -> Result<ExchangeReport> {
        let _span = orchestra_obs::span("recompute-all", "core");
        let start = Instant::now();
        let mut report = ExchangeReport::new(ExchangeStrategy::FullRecomputation);

        {
            let (system, policies, owner, db, graph, plans, engine, pool) = self.split_for_eval();

            for logical in system.logical_relations() {
                db.relation_mut(&internal_name(&logical, InternalRole::Input))?
                    .clear();
                db.relation_mut(&internal_name(&logical, InternalRole::Output))?
                    .clear();
            }
            for p in system.provenance_relations() {
                db.relation_mut(&p)?.clear();
            }

            // When every policy is unconditional trust-all (the common case)
            // the evaluator runs with no per-tuple filter at all.
            let filter = trust_filter(system, policies, owner);
            let active: Option<&DerivationFilter<'_>> = if all_trust_all(policies) {
                None
            } else {
                Some(&filter)
            };
            let mut eval = make_evaluator(engine, pool);
            report.eval_stats = eval.run_filtered_cached(plans, &system.program, db, active)?;

            for logical in system.logical_relations() {
                for role in [InternalRole::Input, InternalRole::Output] {
                    let name = internal_name(&logical, role);
                    report.add_inserted(&name, db.relation(&name)?.len());
                }
            }
            for p in system.provenance_relations() {
                report.add_inserted(&p, db.relation(&p)?.len());
            }

            // The graph is stale relative to the recomputed store; rebuild
            // it lazily on the next provenance read instead of inline here.
            graph.invalidate();
        }
        report.duration = start.elapsed();
        phase_histogram("recompute").observe(report.duration);
        // Publication is deferred like the incremental paths': recompute is
        // not reachable over the wire, and `Cdss::snapshot` refreshes on
        // demand for in-process readers.
        Ok(report)
    }

    /// Incrementally propagate a batch of fresh local contributions:
    /// `insertions` maps **logical** relation names to new tuples, which are
    /// added to the owning peers' local-contribution tables and pushed
    /// through the delta rules (paper §4.2), with trust conditions applied
    /// during derivation.
    ///
    /// No eager snapshot publication happens here: the next
    /// [`Cdss::snapshot`] call (or exchange/checkpoint commit) picks the
    /// change up, so the hot incremental path pays nothing for idle
    /// snapshot readers — and `update_exchange` composes this with
    /// deletion propagation before publishing one whole-epoch snapshot.
    pub fn apply_insertions_incremental(
        &mut self,
        insertions: &BTreeMap<String, Vec<Tuple>>,
    ) -> Result<ExchangeReport> {
        for (rel, tuples) in insertions {
            self.check_logical_batch(rel, tuples)?;
        }
        let _span = orchestra_obs::span("insertion-round", "core");
        let start = Instant::now();
        let mut report = ExchangeReport::new(ExchangeStrategy::IncrementalInsertion);

        let (system, policies, owner, db, graph, plans, engine, pool) = self.split_for_eval();

        let base: HashMap<String, Vec<Tuple>> = insertions
            .iter()
            .map(|(rel, ts)| {
                (
                    internal_name(rel, InternalRole::LocalContributions),
                    ts.clone(),
                )
            })
            .collect();

        let filter = trust_filter(system, policies, owner);
        let active: Option<&DerivationFilter<'_>> = if all_trust_all(policies) {
            None
        } else {
            Some(&filter)
        };
        let mut eval = make_evaluator(engine, pool);
        let new = eval.propagate_insertions_cached(plans, &system.program, db, &base, active)?;
        report.eval_stats = eval.take_stats();

        for (rel, ts) in &new {
            report.add_inserted(rel, ts.len());
        }
        {
            let _graph_span = orchestra_obs::span("provenance-rebuild", "core");
            let t_graph = Instant::now();
            graph.extend_with_insertions(new);
            phase_histogram("provenance-rebuild").observe(t_graph.elapsed());
        }
        report.duration = start.elapsed();
        phase_histogram("insertion-round").observe(report.duration);
        Ok(report)
    }

    /// Incrementally propagate a batch of deletions: `deletions` maps
    /// **logical** relation names to tuples to delete at the owning peer.
    /// A deleted tuple that is one of the peer's own local contributions is
    /// *retracted* from `R_l`; a deleted tuple the peer never inserted is a
    /// curation *rejection* recorded in `R_r` (paper §2, §3.1). Both kinds
    /// cascade through the mappings using the provenance-guided algorithm of
    /// Figure 3.
    pub fn apply_deletions_incremental(
        &mut self,
        deletions: &BTreeMap<String, Vec<Tuple>>,
    ) -> Result<ExchangeReport> {
        let (retractions, rejections) = self.classify_deletions(deletions)?;
        // Like insertions, deletions defer snapshot publication to the next
        // `snapshot()` call or exchange/checkpoint commit.
        self.propagate_deletions_incremental(&retractions, &rejections)
    }

    /// Like [`Cdss::apply_deletions_incremental`] but using the DRed
    /// algorithm (over-delete, then re-derive) as the comparison baseline of
    /// the paper's Figure 4.
    pub fn apply_deletions_dred(
        &mut self,
        deletions: &BTreeMap<String, Vec<Tuple>>,
    ) -> Result<ExchangeReport> {
        let (retractions, rejections) = self.classify_deletions(deletions)?;
        self.propagate_deletions_dred(&retractions, &rejections)
    }

    /// Split a batch of logical-level deletions into retractions of local
    /// contributions and rejections of imported data.
    fn classify_deletions(&self, deletions: &TupleBatch) -> Result<(TupleBatch, TupleBatch)> {
        let mut retractions: BTreeMap<String, Vec<Tuple>> = BTreeMap::new();
        let mut rejections: BTreeMap<String, Vec<Tuple>> = BTreeMap::new();
        for (rel, tuples) in deletions {
            self.check_logical_batch(rel, tuples)?;
            let rl = internal_name(rel, InternalRole::LocalContributions);
            for t in tuples {
                if self.database().contains(&rl, t)? {
                    retractions.entry(rel.clone()).or_default().push(t.clone());
                } else {
                    rejections.entry(rel.clone()).or_default().push(t.clone());
                }
            }
        }
        Ok((retractions, rejections))
    }

    /// The provenance-guided deletion propagation algorithm (Figure 3).
    pub(crate) fn propagate_deletions_incremental(
        &mut self,
        retractions: &BTreeMap<String, Vec<Tuple>>,
        rejections: &BTreeMap<String, Vec<Tuple>>,
    ) -> Result<ExchangeReport> {
        let _span = orchestra_obs::span("deletion-round", "core");
        let start = Instant::now();
        let mut report = ExchangeReport::new(ExchangeStrategy::IncrementalDeletion);

        let (system, policies, owner, db, graph, _plans, _engine, _pool) = self.split_for_eval();
        // The derivability test below needs the graph in sync with the
        // pre-deletion store.
        graph.ensure(system, db);

        // 1. Apply the base changes.
        for (logical, tuples) in retractions {
            let rl = internal_name(logical, InternalRole::LocalContributions);
            for t in tuples {
                if db.remove(&rl, t)? {
                    report.add_deleted(&rl, 1);
                }
            }
        }
        for (logical, tuples) in rejections {
            let rr = internal_name(logical, InternalRole::Rejections);
            for t in tuples {
                db.insert(&rr, t.clone())?;
            }
        }

        // 2. Goal-directed derivability: a derived tuple survives iff it is
        //    still derivable from surviving base data, through import edges
        //    not blocked by rejections, and through mapping instantiations
        //    still accepted by the target peer's trust policy (Fig. 3 l.16).
        let db_ref: &orchestra_storage::Database = db;
        let gview = graph.view();
        let valid = gview.trusted_set(
            |tok: &ProvenanceToken| {
                db_ref
                    .relation(&tok.relation)
                    .map(|r| r.contains(&tok.tuple))
                    .unwrap_or(false)
            },
            |mapping, rel, tuple| {
                if let Some(logical) = mapping.strip_prefix("import:") {
                    let rr = internal_name(logical, InternalRole::Rejections);
                    return !db_ref.contains(&rr, tuple).unwrap_or(false);
                }
                if mapping.starts_with("local:") {
                    return true;
                }
                if let Some(logical) = logical_of_input(rel) {
                    if let Some(peer) = owner.get(logical) {
                        if let Some(policy) = policies.get(peer) {
                            return policy.accepts(mapping, tuple);
                        }
                    }
                }
                true
            },
        );

        // 3. Remove derived tuples that lost all their derivations. The
        //    iterator carries node ids, so no by-value re-lookup happens.
        let mut to_remove: Vec<(String, Tuple)> = Vec::new();
        for (id, rel, tuple) in gview.tuple_nodes_with_ids() {
            if !(rel.ends_with("_i") || rel.ends_with("_o")) {
                continue;
            }
            if !valid.contains(&id) {
                to_remove.push((rel.to_string(), tuple.clone()));
            }
        }
        for (rel, tuple) in &to_remove {
            if db.remove(rel, tuple)? {
                report.add_deleted(rel, 1);
            }
        }

        // 4. Drop provenance rows whose rule instantiation lost a source
        //    tuple (the deletions to the provenance relations of Fig. 3 l.7).
        //    The read pass borrows rows in place and clones only the doomed
        //    ones (typically a small fraction), which are then removed.
        for compiled in &system.compiled {
            for table in &compiled.provenance {
                let doomed: Vec<Tuple> = db
                    .relation(&table.relation)?
                    .iter()
                    .filter(|row| {
                        compiled
                            .sources_iter(row)
                            .any(|(r, t)| !db.contains(r, &t).unwrap_or(false))
                    })
                    .cloned()
                    .collect();
                for row in doomed {
                    if db.remove(&table.relation, &row)? {
                        report.add_deleted(&table.relation, 1);
                    }
                }
            }
        }

        // 5. The graph now contains stale nodes; it is rebuilt lazily on
        //    the next provenance read.
        graph.invalidate();
        report.duration = start.elapsed();
        phase_histogram("deletion-round").observe(report.duration);
        Ok(report)
    }

    /// The DRed baseline: over-delete everything transitively derivable from
    /// the deleted base tuples, then re-derive whatever still has a
    /// derivation from the remaining data.
    pub(crate) fn propagate_deletions_dred(
        &mut self,
        retractions: &BTreeMap<String, Vec<Tuple>>,
        rejections: &BTreeMap<String, Vec<Tuple>>,
    ) -> Result<ExchangeReport> {
        let start = Instant::now();
        let mut report = ExchangeReport::new(ExchangeStrategy::DRed);

        let (system, policies, owner, db, graph, plans, engine, pool) = self.split_for_eval();

        // 1. Apply the base changes and seed the over-deletion frontier.
        let mut frontier: HashMap<String, HashSet<Tuple>> = HashMap::new();
        for (logical, tuples) in retractions {
            let rl = internal_name(logical, InternalRole::LocalContributions);
            for t in tuples {
                if db.remove(&rl, t)? {
                    report.add_deleted(&rl, 1);
                    frontier.entry(rl.clone()).or_default().insert(t.clone());
                }
            }
        }
        for (logical, tuples) in rejections {
            let rr = internal_name(logical, InternalRole::Rejections);
            let rl = internal_name(logical, InternalRole::LocalContributions);
            let ro = internal_name(logical, InternalRole::Output);
            for t in tuples {
                db.insert(&rr, t.clone())?;
                if !db.contains(&rl, t)? && db.contains(&ro, t)? {
                    frontier.entry(ro.clone()).or_default().insert(t.clone());
                }
            }
        }

        // 2. Over-deletion: pessimistically delete every tuple transitively
        //    derivable from a deleted tuple.
        let mut overdeleted: HashMap<String, HashSet<Tuple>> = HashMap::new();
        while !frontier.is_empty() {
            let candidates = deletion_candidates(&system.program, db, &frontier, engine)?;
            for (rel, tuples) in &frontier {
                for t in tuples {
                    if db.remove(rel, t)? {
                        report.add_deleted(rel, 1);
                    }
                    overdeleted
                        .entry(rel.clone())
                        .or_default()
                        .insert(t.clone());
                }
            }
            let mut next: HashMap<String, HashSet<Tuple>> = HashMap::new();
            for (rel, tuples) in candidates {
                for t in tuples {
                    let seen = overdeleted.get(&rel).is_some_and(|s| s.contains(&t));
                    if !seen && db.contains(&rel, &t).unwrap_or(false) {
                        next.entry(rel.clone()).or_default().insert(t);
                    }
                }
            }
            frontier = next;
        }

        // 3. Re-derivation: for every over-deleted tuple, check whether some
        //    rule instantiation over the *remaining* data still produces it;
        //    re-insert those and propagate the re-insertions to fixpoint.
        //    (This full re-evaluation of the rules is exactly why DRed is
        //    more expensive than the provenance-guided algorithm, §4.2.)
        let filter = trust_filter(system, policies, owner);
        let active: Option<&DerivationFilter<'_>> = if all_trust_all(policies) {
            None
        } else {
            Some(&filter)
        };
        let mut eval = make_evaluator(engine, pool);
        let mut rederive: HashMap<String, Vec<Tuple>> = HashMap::new();
        for rule in system.program.rules() {
            let Some(dead) = overdeleted.get(&rule.head.relation) else {
                continue;
            };
            if dead.is_empty() {
                continue;
            }
            let produced = eval.evaluate_rule(rule, db, None, active)?;
            for t in produced {
                if dead.contains(&t) {
                    rederive
                        .entry(rule.head.relation.clone())
                        .or_default()
                        .push(t);
                }
            }
        }
        for ts in rederive.values_mut() {
            ts.sort();
            ts.dedup();
        }
        let reinserted =
            eval.propagate_insertions_cached(plans, &system.program, db, &rederive, active)?;
        for (rel, ts) in &reinserted {
            report.add_inserted(rel, ts.len());
        }
        report.eval_stats = eval.take_stats();

        graph.invalidate();
        report.duration = start.elapsed();
        Ok(report)
    }

    /// Perform an update exchange for one peer: publish its pending edit
    /// logs, apply the resulting deletions (retractions and rejections) and
    /// insertions, and propagate everything incrementally.
    pub fn update_exchange(&mut self, peer: &str) -> Result<(PublishReport, Vec<ExchangeReport>)> {
        let _span = orchestra_obs::span("exchange", "core");
        // Registration already rejects programs with analysis errors, so the
        // memoized report is clean here; the check is a belt-and-braces gate
        // against a divergent fixpoint ever starting.
        if let Some(err) = orchestra_analyze::AnalysisError::from_report(self.analysis().clone()) {
            return Err(err.into());
        }
        // Write-ahead: a persistent CDSS appends the pending edit logs as a
        // durable epoch before publishing them (no-op otherwise).
        self.log_pending_epoch(peer)?;
        // Publishing consumes the pending logs; if propagation then fails,
        // put them back so the edits are neither lost from memory nor (on a
        // persistent CDSS) stranded in the WAL while absent everywhere else
        // — a later exchange simply re-publishes them.
        let saved_pending = self.pending_logs_of(peer);
        let result = self.publish(peer).and_then(|(publish_report, changes)| {
            Ok((publish_report, self.apply_published_changes(&changes)?))
        });
        match result {
            Ok(ok) => {
                // The exchange committed: this is the one publication point
                // for the whole deletion+insertion round, so snapshot
                // readers see pre- or post-exchange epochs, never a
                // mid-propagation mix.
                let t_publish = Instant::now();
                self.publish_snapshot();
                phase_histogram("snapshot-publish").observe(t_publish.elapsed());
                Ok(ok)
            }
            Err(err) => {
                if let Some(logs) = saved_pending {
                    self.restore_pending_logs(peer, logs);
                }
                Err(err)
            }
        }
    }

    /// Perform an update exchange for every peer, in peer-id order.
    pub fn update_exchange_all(
        &mut self,
    ) -> Result<Vec<(PeerId, PublishReport, Vec<ExchangeReport>)>> {
        let mut out = Vec::new();
        for peer in self.peer_ids() {
            let (publish_report, reports) = self.update_exchange(&peer)?;
            out.push((peer, publish_report, reports));
        }
        Ok(out)
    }

    /// A copy of one peer's pending edit logs, if any.
    fn pending_logs_of(&self, peer: &str) -> Option<BTreeMap<String, orchestra_storage::EditLog>> {
        self.pending.get(peer).cloned()
    }

    /// Put a peer's pending edit logs back (failed-exchange rollback).
    fn restore_pending_logs(
        &mut self,
        peer: &str,
        logs: BTreeMap<String, orchestra_storage::EditLog>,
    ) {
        self.pending.insert(peer.to_string(), logs);
    }

    fn apply_published_changes(
        &mut self,
        changes: &PublishedChanges,
    ) -> Result<Vec<ExchangeReport>> {
        let mut reports = Vec::new();
        if changes.is_empty() {
            return Ok(reports);
        }
        if !changes.retractions.is_empty() || !changes.rejections.is_empty() {
            reports.push(
                self.propagate_deletions_incremental(&changes.retractions, &changes.rejections)?,
            );
        }
        if !changes.contributions.is_empty() {
            reports.push(self.apply_insertions_incremental(&changes.contributions)?);
        }
        Ok(reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CdssBuilder;
    use crate::trust::{CmpOp, Predicate, TrustPolicy};
    use orchestra_datalog::parser::parse_rule;
    use orchestra_datalog::EngineKind;
    use orchestra_storage::tuple::int_tuple;
    use orchestra_storage::RelationSchema;

    /// The CDSS of the paper's running example (Figure 1 / Example 2).
    fn example_cdss(engine: EngineKind) -> Cdss {
        CdssBuilder::new()
            .add_peer(
                "PGUS",
                vec![RelationSchema::new("G", &["id", "can", "nam"])],
            )
            .add_peer("PBioSQL", vec![RelationSchema::new("B", &["id", "nam"])])
            .add_peer("PuBio", vec![RelationSchema::new("U", &["nam", "can"])])
            .add_mapping_str("m1", "G(i, c, n) -> B(i, n)")
            .add_mapping_str("m2", "G(i, c, n) -> U(n, c)")
            .add_mapping_str("m3", "B(i, n) -> U(n, c)")
            .add_mapping_str("m4", "B(i, c), U(n, c) -> B(i, n)")
            .engine(engine)
            .build()
            .unwrap()
    }

    /// Load the edit logs of Example 3 and run an exchange for every peer.
    fn load_example3(cdss: &mut Cdss) {
        cdss.insert_local("PGUS", "G", int_tuple(&[1, 2, 3]))
            .unwrap();
        cdss.insert_local("PGUS", "G", int_tuple(&[3, 5, 2]))
            .unwrap();
        cdss.insert_local("PBioSQL", "B", int_tuple(&[3, 5]))
            .unwrap();
        cdss.insert_local("PuBio", "U", int_tuple(&[2, 5])).unwrap();
        cdss.update_exchange_all().unwrap();
    }

    #[test]
    fn example_3_instances_are_computed() {
        for engine in EngineKind::all() {
            let mut cdss = example_cdss(engine);
            load_example3(&mut cdss);

            // G = {(1,2,3), (3,5,2)}
            let g = cdss.local_instance("PGUS", "G").unwrap();
            assert_eq!(g, vec![int_tuple(&[1, 2, 3]), int_tuple(&[3, 5, 2])]);

            // B = {(3,5), (3,2), (1,3), (3,3)}
            let b = cdss.certain_answers("PBioSQL", "B").unwrap();
            assert_eq!(
                b,
                vec![
                    int_tuple(&[1, 3]),
                    int_tuple(&[3, 2]),
                    int_tuple(&[3, 3]),
                    int_tuple(&[3, 5]),
                ],
                "engine {engine}"
            );

            // U's certain part = {(2,5), (3,2)}; the full instance also has
            // three labeled-null tuples from mapping m3.
            let u_certain = cdss.certain_answers("PuBio", "U").unwrap();
            assert_eq!(u_certain, vec![int_tuple(&[2, 5]), int_tuple(&[3, 2])]);
            let u_all = cdss.local_instance("PuBio", "U").unwrap();
            assert_eq!(u_all.len(), 5);
            assert_eq!(u_all.iter().filter(|t| t.has_labeled_null()).count(), 3);
        }
    }

    #[test]
    fn example_3_certain_answer_queries() {
        let mut cdss = example_cdss(EngineKind::Pipelined);
        load_example3(&mut cdss);

        // ans(x, y) :- U(x, z), U(y, z) returns {(2,2), (3,3), (5,5)}:
        // the labeled nulls join on equality but never produce new certain
        // pairs beyond the diagonal.
        let q = parse_rule("ans(x, y) :- U(x, z), U(y, z).").unwrap();
        let answers = cdss.query_certain(&q).unwrap();
        assert_eq!(
            answers,
            vec![int_tuple(&[2, 2]), int_tuple(&[3, 3]), int_tuple(&[5, 5])]
        );

        // ans(x, y) :- U(x, y) returns {(2,5), (3,2)}.
        let q = parse_rule("ans(x, y) :- U(x, y).").unwrap();
        let answers = cdss.query_certain(&q).unwrap();
        assert_eq!(answers, vec![int_tuple(&[2, 5]), int_tuple(&[3, 2])]);
        // The non-certain variant additionally returns the labeled-null rows.
        assert_eq!(cdss.query_rule(&q).unwrap().len(), 5);
    }

    #[test]
    fn example_6_provenance_expressions() {
        let mut cdss = example_cdss(EngineKind::Pipelined);
        load_example3(&mut cdss);
        let expr = cdss.provenance_of("B", &int_tuple(&[3, 2]));
        // Two alternative derivations: via m1 from G(3,5,2) and via m4 from
        // B(3,5) and U(2,5).
        assert_eq!(expr.num_derivations(), 2);
        let s = expr.to_string();
        assert!(s.contains("m1("), "{s}");
        assert!(s.contains("m4("), "{s}");
        assert!(s.contains("G_l(3, 5, 2)"), "{s}");

        // A base-only tuple has provenance rooted at its own token.
        let expr = cdss.provenance_of("G", &int_tuple(&[1, 2, 3]));
        assert!(expr.to_string().contains("G_l(1, 2, 3)"));
        // An unknown tuple has zero provenance.
        assert!(cdss.provenance_of("B", &int_tuple(&[9, 9])).is_zero());
    }

    #[test]
    fn incremental_insertion_equals_full_recomputation() {
        for engine in EngineKind::all() {
            // Incremental path.
            let mut incr = example_cdss(engine);
            load_example3(&mut incr);
            let mut batch = BTreeMap::new();
            batch.insert("G".to_string(), vec![int_tuple(&[7, 8, 9])]);
            batch.insert("B".to_string(), vec![int_tuple(&[4, 8])]);
            incr.apply_insertions_incremental(&batch).unwrap();

            // Recomputation path over the same base data.
            let mut full = example_cdss(engine);
            load_example3(&mut full);
            let mut batch2 = BTreeMap::new();
            batch2.insert("G".to_string(), vec![int_tuple(&[7, 8, 9])]);
            batch2.insert("B".to_string(), vec![int_tuple(&[4, 8])]);
            full.apply_insertions_incremental(&batch2).unwrap();
            full.recompute_all().unwrap();

            for (peer, rel) in [("PGUS", "G"), ("PBioSQL", "B"), ("PuBio", "U")] {
                assert_eq!(
                    incr.local_instance(peer, rel).unwrap(),
                    full.local_instance(peer, rel).unwrap(),
                    "{rel} differs under engine {engine}"
                );
            }
        }
    }

    #[test]
    fn example_4_trust_conditions_filter_updates() {
        // PBioSQL distrusts B(i, n) from m1 when n >= 3 and B(i, n) from m4
        // when n != 2.
        let mut cdss = CdssBuilder::new()
            .add_peer(
                "PGUS",
                vec![RelationSchema::new("G", &["id", "can", "nam"])],
            )
            .add_peer("PBioSQL", vec![RelationSchema::new("B", &["id", "nam"])])
            .add_peer("PuBio", vec![RelationSchema::new("U", &["nam", "can"])])
            .add_mapping_str("m1", "G(i, c, n) -> B(i, n)")
            .add_mapping_str("m2", "G(i, c, n) -> U(n, c)")
            .add_mapping_str("m3", "B(i, n) -> U(n, c)")
            .add_mapping_str("m4", "B(i, c), U(n, c) -> B(i, n)")
            .trust_policy(
                "PBioSQL",
                TrustPolicy::trust_all()
                    .with_condition(
                        "m1",
                        Predicate::Not(Box::new(Predicate::cmp(1, CmpOp::Ge, 3i64))),
                    )
                    .with_condition("m4", Predicate::cmp(1, CmpOp::Eq, 2i64)),
            )
            .build()
            .unwrap();
        load_example3(&mut cdss);

        let b = cdss.certain_answers("PBioSQL", "B").unwrap();
        // B(1,3) rejected by the first condition; B(3,3) rejected by the
        // second; B(3,2) (n=2) and the local B(3,5) survive.
        assert_eq!(b, vec![int_tuple(&[3, 2]), int_tuple(&[3, 5])]);

        // As a consequence PuBio does not get U(3, c3) (the paper's
        // observation in Example 4).
        let u = cdss.local_instance("PuBio", "U").unwrap();
        let nulls_with_3: Vec<_> = u
            .iter()
            .filter(|t| t.has_labeled_null() && t[0] == orchestra_storage::Value::int(3))
            .collect();
        assert!(nulls_with_3.is_empty(), "{u:?}");
    }

    #[test]
    fn curation_deletion_of_imported_data_cascades() {
        // Example 3's closing remark: deleting (3,2) from B removes B(3,3)
        // and U(2,c2) as well, and the rejection persists.
        for engine in EngineKind::all() {
            let mut cdss = example_cdss(engine);
            load_example3(&mut cdss);

            cdss.delete_local("PBioSQL", "B", int_tuple(&[3, 2]))
                .unwrap();
            let (publish, reports) = cdss.update_exchange("PBioSQL").unwrap();
            assert_eq!(publish.rejections_added["B"], 1);
            assert_eq!(reports.len(), 1);

            let b = cdss.certain_answers("PBioSQL", "B").unwrap();
            assert_eq!(
                b,
                vec![int_tuple(&[1, 3]), int_tuple(&[3, 5])],
                "engine {engine}"
            );
            // U loses the labeled-null tuple derived from B(3,2) via m3 (it
            // had 5 tuples before, see example_3_instances_are_computed).
            let u = cdss.local_instance("PuBio", "U").unwrap();
            assert_eq!(u.len(), 4, "engine {engine}: {u:?}");
            // The rejection persists across later exchanges: re-running a
            // full recomputation does not resurrect the tuple.
            cdss.recompute_all().unwrap();
            let b = cdss.certain_answers("PBioSQL", "B").unwrap();
            assert_eq!(b, vec![int_tuple(&[1, 3]), int_tuple(&[3, 5])]);
        }
    }

    #[test]
    fn incremental_deletion_dred_and_recomputation_agree() {
        for engine in EngineKind::all() {
            let deletions = {
                let mut d = BTreeMap::new();
                d.insert("G".to_string(), vec![int_tuple(&[3, 5, 2])]);
                d.insert("B".to_string(), vec![int_tuple(&[3, 5])]);
                d
            };

            let mut incremental = example_cdss(engine);
            load_example3(&mut incremental);
            incremental.apply_deletions_incremental(&deletions).unwrap();

            let mut dred = example_cdss(engine);
            load_example3(&mut dred);
            dred.apply_deletions_dred(&deletions).unwrap();

            let mut recomputed = example_cdss(engine);
            load_example3(&mut recomputed);
            // Apply the base deletions, then recompute everything.
            recomputed.apply_deletions_incremental(&deletions).unwrap();
            recomputed.recompute_all().unwrap();

            for (peer, rel) in [("PGUS", "G"), ("PBioSQL", "B"), ("PuBio", "U")] {
                let a = incremental.local_instance(peer, rel).unwrap();
                let b = dred.local_instance(peer, rel).unwrap();
                let c = recomputed.local_instance(peer, rel).unwrap();
                assert_eq!(a, b, "incremental vs DRed on {rel}, engine {engine}");
                assert_eq!(
                    a, c,
                    "incremental vs recomputation on {rel}, engine {engine}"
                );
            }
        }
    }

    #[test]
    fn retraction_of_local_contribution_propagates() {
        let mut cdss = example_cdss(EngineKind::Pipelined);
        load_example3(&mut cdss);
        // Retract PGUS's G(1,2,3): B(1,3) and U(3,2) lose their only
        // derivations and disappear; everything derived from G(3,5,2) stays.
        cdss.delete_local("PGUS", "G", int_tuple(&[1, 2, 3]))
            .unwrap();
        cdss.update_exchange("PGUS").unwrap();

        assert_eq!(
            cdss.local_instance("PGUS", "G").unwrap(),
            vec![int_tuple(&[3, 5, 2])]
        );
        let b = cdss.certain_answers("PBioSQL", "B").unwrap();
        assert!(!b.contains(&int_tuple(&[1, 3])));
        assert!(b.contains(&int_tuple(&[3, 2])));
        let u = cdss.certain_answers("PuBio", "U").unwrap();
        assert!(!u.contains(&int_tuple(&[3, 2])));
        assert!(u.contains(&int_tuple(&[2, 5])));
    }

    #[test]
    fn insert_then_delete_in_same_log_is_a_noop() {
        let mut cdss = example_cdss(EngineKind::Pipelined);
        cdss.insert_local("PGUS", "G", int_tuple(&[1, 1, 1]))
            .unwrap();
        cdss.delete_local("PGUS", "G", int_tuple(&[1, 1, 1]))
            .unwrap();
        assert_eq!(cdss.pending_edit_count("PGUS"), 2);
        let (publish, reports) = cdss.update_exchange("PGUS").unwrap();
        assert!(publish.is_empty());
        assert!(reports.is_empty());
        assert!(cdss.local_instance("PGUS", "G").unwrap().is_empty());
        assert_eq!(cdss.pending_edit_count("PGUS"), 0);
    }

    #[test]
    fn edits_validate_ownership_and_arity() {
        let mut cdss = example_cdss(EngineKind::Pipelined);
        assert!(matches!(
            cdss.insert_local("PGUS", "B", int_tuple(&[1, 2]))
                .unwrap_err(),
            CdssError::NotPeerRelation { .. }
        ));
        assert!(matches!(
            cdss.insert_local("PGUS", "G", int_tuple(&[1])).unwrap_err(),
            CdssError::ArityMismatch { .. }
        ));
        assert!(matches!(
            cdss.insert_local("nobody", "G", int_tuple(&[1, 2, 3]))
                .unwrap_err(),
            CdssError::UnknownPeer(_)
        ));
        let mut bad_batch = BTreeMap::new();
        bad_batch.insert("Z".to_string(), vec![int_tuple(&[1])]);
        assert!(cdss.apply_insertions_incremental(&bad_batch).is_err());
    }

    #[test]
    fn derivability_api_reflects_current_base_data() {
        let mut cdss = example_cdss(EngineKind::Pipelined);
        load_example3(&mut cdss);
        assert!(cdss.is_derivable("B", &int_tuple(&[3, 2])));
        assert!(!cdss.is_derivable("B", &int_tuple(&[9, 9])));

        // After deleting both supports, the tuple is no longer derivable (and
        // has been removed from the instance).
        let mut deletions = BTreeMap::new();
        deletions.insert("G".to_string(), vec![int_tuple(&[3, 5, 2])]);
        deletions.insert("B".to_string(), vec![int_tuple(&[3, 5])]);
        cdss.apply_deletions_incremental(&deletions).unwrap();
        assert!(!cdss.is_derivable("B", &int_tuple(&[3, 2])));
        assert!(!cdss
            .certain_answers("PBioSQL", "B")
            .unwrap()
            .contains(&int_tuple(&[3, 2])));
    }

    #[test]
    fn reports_capture_counts_and_strategies() {
        let mut cdss = example_cdss(EngineKind::Batch);
        load_example3(&mut cdss);
        let report = cdss.recompute_all().unwrap();
        assert_eq!(report.strategy, ExchangeStrategy::FullRecomputation);
        assert!(report.total_inserted() > 0);
        assert!(report.eval_stats.rule_applications > 0);

        let mut batch = BTreeMap::new();
        batch.insert("G".to_string(), vec![int_tuple(&[10, 11, 12])]);
        let report = cdss.apply_insertions_incremental(&batch).unwrap();
        assert_eq!(report.strategy, ExchangeStrategy::IncrementalInsertion);
        assert!(report.total_inserted() >= 3);

        let mut dels = BTreeMap::new();
        dels.insert("G".to_string(), vec![int_tuple(&[10, 11, 12])]);
        let report = cdss.apply_deletions_incremental(&dels).unwrap();
        assert_eq!(report.strategy, ExchangeStrategy::IncrementalDeletion);
        assert!(report.total_deleted() >= 3);
    }

    #[test]
    fn changing_trust_policy_then_recomputing_applies_it() {
        let mut cdss = example_cdss(EngineKind::Pipelined);
        load_example3(&mut cdss);
        assert!(cdss
            .certain_answers("PBioSQL", "B")
            .unwrap()
            .contains(&int_tuple(&[1, 3])));

        cdss.set_trust_policy("PBioSQL", TrustPolicy::trust_all().distrusting("m1"))
            .unwrap();
        cdss.recompute_all().unwrap();
        let b = cdss.certain_answers("PBioSQL", "B").unwrap();
        // Everything that only arrived via m1 is gone; B(3,2) survives via m4.
        assert!(!b.contains(&int_tuple(&[1, 3])));
        assert!(b.contains(&int_tuple(&[3, 2])));

        assert!(cdss
            .set_trust_policy("PBioSQL", TrustPolicy::trust_all().distrusting("m99"))
            .is_err());
        assert!(cdss
            .set_trust_policy("nobody", TrustPolicy::trust_all())
            .is_err());
    }
}
