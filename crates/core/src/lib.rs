//! # orchestra-core
//!
//! The ORCHESTRA collaborative data sharing system (CDSS), reproducing
//! *Update Exchange with Mappings and Provenance* (Green, Karvounarakis,
//! Ives, Tannen; VLDB 2007 / UPenn TR MS-CIS-07-26).
//!
//! A [`Cdss`] hosts a set of autonomous **peers**, each owning a relational
//! schema and a locally edited instance. Peers are related by **schema
//! mappings** (tgds); every peer's updates are translated along the mappings
//! into the other peers' schemas, filtered by per-peer **trust policies**
//! evaluated over **provenance**, and overlaid with each peer's own local
//! contributions and curation deletions.
//!
//! The crate implements the full lifecycle described in the paper:
//!
//! * local editing and edit logs (§3.1): [`Cdss::insert_local`],
//!   [`Cdss::delete_local`], [`Cdss::publish`];
//! * update translation to canonical instances with labeled nulls, computed
//!   by compiling the mappings to datalog with Skolem functions (§4.1.1) and
//!   maintaining the relational provenance encoding of §4.1.2;
//! * trust policies applied during derivation (§3.3, §4.2):
//!   [`TrustPolicy`], [`Predicate`];
//! * the provenance graph of §3.2, rebuilt from the stored provenance
//!   relations, powering provenance queries ([`Cdss::provenance_of`]) and
//!   goal-directed derivability tests;
//! * **incremental update exchange** (§4.2): insertion propagation via delta
//!   rules ([`Cdss::apply_insertions_incremental`]), the provenance-guided
//!   deletion-propagation algorithm of Figure 3
//!   ([`Cdss::apply_deletions_incremental`]), the DRed baseline
//!   ([`Cdss::apply_deletions_dred`]), and full recomputation
//!   ([`Cdss::recompute_all`]);
//! * certain-answer queries over each peer's local instance (§2.1):
//!   [`Cdss::certain_answers`], [`Cdss::query_rule`].
//!
//! See the `examples/` directory of the repository for end-to-end walkthroughs
//! of the paper's running bioinformatics scenario.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builder;
pub mod cdss;
pub mod codec;
pub mod durability;
pub mod error;
pub mod exchange;
pub mod peer;
pub mod report;
pub mod trust;
pub mod view;

pub use builder::CdssBuilder;
pub use cdss::{Cdss, CompactionPolicy};
pub use durability::RecoveryReport;
pub use error::CdssError;
pub use orchestra_analyze::{AnalysisError, AnalysisReport};
pub use orchestra_mappings::Tgd;
pub use orchestra_provenance::{PageDirection, ProvenanceNeighbor};
pub use peer::{Peer, PeerId};
pub use report::{ExchangeReport, PublishReport};
pub use trust::{CmpOp, Predicate, TrustPolicy};
pub use view::{SnapshotReader, SnapshotView};

/// Convenience result alias for CDSS operations.
pub type Result<T> = std::result::Result<T, CdssError>;
