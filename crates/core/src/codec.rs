//! Binary encodings ([`Encode`] / [`Decode`]) for the CDSS-level types that
//! cross process boundaries: trust predicates and trust policies.
//!
//! The persistence manifest (`crates/core/src/durability.rs`) and the wire
//! protocol (`orchestra-net`) share these implementations, so a policy
//! checkpointed to disk and a policy sent over a socket are byte-identical.
//! Layout follows the conventions of [`orchestra_persist::codec`]: `u8`
//! variant tags, `u32` counts, length-prefixed strings.

use orchestra_persist::codec::{Decode, Encode, Reader, Writer};
use orchestra_persist::PersistError;
use orchestra_storage::Value;

use crate::trust::{CmpOp, Predicate, TrustPolicy};

impl Encode for CmpOp {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            CmpOp::Eq => 0,
            CmpOp::Ne => 1,
            CmpOp::Lt => 2,
            CmpOp::Le => 3,
            CmpOp::Gt => 4,
            CmpOp::Ge => 5,
        });
    }
}

impl Decode for CmpOp {
    fn decode(r: &mut Reader<'_>) -> orchestra_persist::Result<Self> {
        let offset = r.offset();
        Ok(match r.get_u8()? {
            0 => CmpOp::Eq,
            1 => CmpOp::Ne,
            2 => CmpOp::Lt,
            3 => CmpOp::Le,
            4 => CmpOp::Gt,
            5 => CmpOp::Ge,
            tag => {
                return Err(PersistError::corrupt(
                    offset,
                    format!("unknown cmp op tag {tag}"),
                ))
            }
        })
    }
}

impl Encode for Predicate {
    fn encode(&self, w: &mut Writer) {
        match self {
            Predicate::True => w.put_u8(0),
            Predicate::False => w.put_u8(1),
            Predicate::Cmp { column, op, value } => {
                w.put_u8(2);
                w.put_u64(*column as u64);
                op.encode(w);
                value.encode(w);
            }
            Predicate::And(ps) => {
                w.put_u8(3);
                w.put_u32(ps.len() as u32);
                for q in ps {
                    q.encode(w);
                }
            }
            Predicate::Or(ps) => {
                w.put_u8(4);
                w.put_u32(ps.len() as u32);
                for q in ps {
                    q.encode(w);
                }
            }
            Predicate::Not(q) => {
                w.put_u8(5);
                q.encode(w);
            }
        }
    }
}

/// Maximum nesting depth of a decoded predicate. Hand-written trust
/// conditions are a handful of levels deep; the cap exists because this
/// decoder also runs on untrusted wire payloads (`SetTrustPolicy`), where
/// unbounded recursion on a crafted `Not(Not(…))` chain would overflow
/// the stack.
const MAX_PREDICATE_DEPTH: u32 = 128;

fn decode_predicate(r: &mut Reader<'_>, depth: u32) -> orchestra_persist::Result<Predicate> {
    let offset = r.offset();
    if depth > MAX_PREDICATE_DEPTH {
        return Err(PersistError::corrupt(
            offset,
            format!("predicate nesting exceeds {MAX_PREDICATE_DEPTH} levels"),
        ));
    }
    let tag = r.get_u8()?;
    Ok(match tag {
        0 => Predicate::True,
        1 => Predicate::False,
        2 => {
            let column = r.get_u64()? as usize;
            let op = CmpOp::decode(r)?;
            let value = Value::decode(r)?;
            Predicate::Cmp { column, op, value }
        }
        3 | 4 => {
            let n = r.get_u32()? as usize;
            let mut ps = Vec::with_capacity(n.min(1 << 12));
            for _ in 0..n {
                ps.push(decode_predicate(r, depth + 1)?);
            }
            if tag == 3 {
                Predicate::And(ps)
            } else {
                Predicate::Or(ps)
            }
        }
        5 => Predicate::Not(Box::new(decode_predicate(r, depth + 1)?)),
        tag => {
            return Err(PersistError::corrupt(
                offset,
                format!("unknown predicate tag {tag}"),
            ))
        }
    })
}

impl Decode for Predicate {
    fn decode(r: &mut Reader<'_>) -> orchestra_persist::Result<Self> {
        decode_predicate(r, 0)
    }
}

impl Encode for TrustPolicy {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.distrusted_mappings.len() as u32);
        for m in &self.distrusted_mappings {
            w.put_str(m);
        }
        w.put_u32(self.conditions.len() as u32);
        for (mapping, predicate) in &self.conditions {
            w.put_str(mapping);
            predicate.encode(w);
        }
    }
}

impl Decode for TrustPolicy {
    fn decode(r: &mut Reader<'_>) -> orchestra_persist::Result<Self> {
        let mut policy = TrustPolicy::trust_all();
        let ndis = r.get_u32()? as usize;
        for _ in 0..ndis {
            policy.distrusted_mappings.insert(r.get_str()?.to_string());
        }
        let ncond = r.get_u32()? as usize;
        for _ in 0..ncond {
            let mapping = r.get_str()?.to_string();
            let predicate = Predicate::decode(r)?;
            policy.conditions.insert(mapping, predicate);
        }
        Ok(policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: &T) {
        let back = T::from_bytes(&v.to_bytes()).expect("decodes");
        assert_eq!(&back, v);
    }

    #[test]
    fn predicates_roundtrip() {
        roundtrip(&Predicate::True);
        roundtrip(&Predicate::False);
        roundtrip(&Predicate::cmp(1, CmpOp::Ge, 3i64));
        roundtrip(&Predicate::And(vec![
            Predicate::cmp(0, CmpOp::Eq, Value::text("x")),
            Predicate::Not(Box::new(Predicate::Or(vec![
                Predicate::True,
                Predicate::cmp(2, CmpOp::Lt, 9i64),
            ]))),
        ]));
    }

    #[test]
    fn trust_policies_roundtrip() {
        roundtrip(&TrustPolicy::trust_all());
        roundtrip(
            &TrustPolicy::trust_all()
                .distrusting("m2")
                .with_condition("m1", Predicate::cmp(1, CmpOp::Ne, 5i64)),
        );
    }

    #[test]
    fn corrupt_tags_are_rejected() {
        let mut bytes = Predicate::True.to_bytes();
        bytes[0] = 99;
        assert!(Predicate::from_bytes(&bytes).is_err());
        assert!(CmpOp::from_bytes(&[7]).is_err());
    }

    #[test]
    fn hostile_nesting_is_rejected_not_a_stack_overflow() {
        // A wire client could send megabytes of `Not(` tags; decoding must
        // fail with a corruption error at the depth cap, not recurse until
        // the process aborts.
        let mut bytes = vec![5u8; 100_000];
        bytes.push(0); // innermost Predicate::True
        assert!(matches!(
            Predicate::from_bytes(&bytes),
            Err(PersistError::Corrupt { .. })
        ));
        // Deep but sane nesting still decodes.
        let mut p = Predicate::True;
        for _ in 0..100 {
            p = Predicate::Not(Box::new(p));
        }
        roundtrip(&p);
    }
}
