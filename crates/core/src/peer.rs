//! Peers: the autonomous participants of a CDSS.

use std::fmt;

use serde::{Deserialize, Serialize};

use orchestra_storage::RelationSchema;

/// Identifier of a peer, e.g. `"PBioSQL"`.
pub type PeerId = String;

/// A peer: an autonomous administrative domain owning a relational schema
/// and a locally controlled instance (paper §2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Peer {
    /// The peer's identifier.
    pub id: PeerId,
    /// The logical relations owned by this peer. Peer schemas are assumed
    /// disjoint (paper §2), which the [`crate::CdssBuilder`] enforces.
    pub relations: Vec<RelationSchema>,
}

impl Peer {
    /// Create a peer with the given schema.
    pub fn new(id: impl Into<PeerId>, relations: Vec<RelationSchema>) -> Self {
        Peer {
            id: id.into(),
            relations,
        }
    }

    /// Does this peer own the named logical relation?
    pub fn owns(&self, relation: &str) -> bool {
        self.relations.iter().any(|r| r.name() == relation)
    }

    /// The schema of one of this peer's relations, if owned.
    pub fn relation(&self, relation: &str) -> Option<&RelationSchema> {
        self.relations.iter().find(|r| r.name() == relation)
    }

    /// Names of the peer's relations.
    pub fn relation_names(&self) -> Vec<String> {
        self.relations
            .iter()
            .map(|r| r.name().to_string())
            .collect()
    }
}

impl fmt::Display for Peer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer {} {{", self.id)?;
        for (i, r) in self.relations.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ownership_checks() {
        let p = Peer::new("PBioSQL", vec![RelationSchema::new("B", &["id", "nam"])]);
        assert!(p.owns("B"));
        assert!(!p.owns("G"));
        assert!(p.relation("B").is_some());
        assert!(p.relation("G").is_none());
        assert_eq!(p.relation_names(), vec!["B"]);
        assert!(p.to_string().contains("PBioSQL"));
    }
}
