//! Trust policies and data predicates (paper §2.2 and §3.3).
//!
//! Each peer annotates every schema mapping that can bring data *into* its
//! schema with a trust condition Θ. A condition is a [`Predicate`] over the
//! derived tuple's values; a mapping can also be distrusted outright. As
//! tuples are derived during update exchange, those that derive only from
//! trusted data and satisfy the conditions along every mapping are accepted;
//! everything else is rejected (it never enters the peer's input/output
//! tables, and therefore never propagates further — the composition of trust
//! along mapping paths described in §3.3 falls out of this automatically).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use serde::{Deserialize, Serialize};

use orchestra_storage::{Tuple, Value};

/// Comparison operators usable in trust conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    fn eval(self, left: &Value, right: &Value) -> bool {
        match self {
            CmpOp::Eq => left == right,
            CmpOp::Ne => left != right,
            CmpOp::Lt => left < right,
            CmpOp::Le => left <= right,
            CmpOp::Gt => left > right,
            CmpOp::Ge => left >= right,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "≠",
            CmpOp::Lt => "<",
            CmpOp::Le => "≤",
            CmpOp::Gt => ">",
            CmpOp::Ge => "≥",
        };
        write!(f, "{s}")
    }
}

/// A boolean predicate over a tuple's values, used as a trust condition on a
/// mapping ("distrust B(i, n) if n ≥ 3", Example 4).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Predicate {
    /// Always true (the trivial trust condition).
    True,
    /// Always false (blanket distrust).
    False,
    /// Compare the value at a column with a constant.
    Cmp {
        /// Column position within the derived tuple.
        column: usize,
        /// Comparison operator.
        op: CmpOp,
        /// Constant to compare with.
        value: Value,
    },
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Shorthand for a column/constant comparison.
    pub fn cmp(column: usize, op: CmpOp, value: impl Into<Value>) -> Self {
        Predicate::Cmp {
            column,
            op,
            value: value.into(),
        }
    }

    /// Evaluate the predicate on a tuple. Columns outside the tuple's arity
    /// evaluate to `false` (a malformed condition never grants trust).
    pub fn eval(&self, tuple: &Tuple) -> bool {
        match self {
            Predicate::True => true,
            Predicate::False => false,
            Predicate::Cmp { column, op, value } => match tuple.get(*column) {
                Some(v) => op.eval(v, value),
                None => false,
            },
            Predicate::And(ps) => ps.iter().all(|p| p.eval(tuple)),
            Predicate::Or(ps) => ps.iter().any(|p| p.eval(tuple)),
            Predicate::Not(p) => !p.eval(tuple),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "true"),
            Predicate::False => write!(f, "false"),
            Predicate::Cmp { column, op, value } => write!(f, "$%{column} {op} {value}"),
            Predicate::And(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Predicate::Or(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Predicate::Not(p) => write!(f, "¬{p}"),
        }
    }
}

/// A peer's trust policy: per-mapping conditions plus blanket distrust.
///
/// The default policy trusts everything (the "trivial trust conditions" of
/// Example 7).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrustPolicy {
    /// Mappings this peer distrusts entirely: any data derived through them
    /// into this peer is rejected.
    pub distrusted_mappings: BTreeSet<String>,
    /// Conditions per mapping: data derived through the mapping is accepted
    /// only if the predicate holds on the derived tuple.
    pub conditions: BTreeMap<String, Predicate>,
}

impl TrustPolicy {
    /// The policy that trusts everything.
    pub fn trust_all() -> Self {
        TrustPolicy::default()
    }

    /// Add a condition for a mapping (builder style).
    pub fn with_condition(mut self, mapping: impl Into<String>, predicate: Predicate) -> Self {
        self.conditions.insert(mapping.into(), predicate);
        self
    }

    /// Distrust a mapping entirely (builder style).
    pub fn distrusting(mut self, mapping: impl Into<String>) -> Self {
        self.distrusted_mappings.insert(mapping.into());
        self
    }

    /// Does this policy accept a tuple derived through `mapping`?
    pub fn accepts(&self, mapping: &str, derived: &Tuple) -> bool {
        if self.distrusted_mappings.contains(mapping) {
            return false;
        }
        match self.conditions.get(mapping) {
            Some(p) => p.eval(derived),
            None => true,
        }
    }

    /// Is this the trust-everything policy?
    pub fn is_trust_all(&self) -> bool {
        self.distrusted_mappings.is_empty() && self.conditions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orchestra_storage::tuple::int_tuple;

    #[test]
    fn comparison_predicates() {
        let t = int_tuple(&[1, 3]);
        assert!(Predicate::cmp(1, CmpOp::Ge, 3i64).eval(&t));
        assert!(!Predicate::cmp(1, CmpOp::Lt, 3i64).eval(&t));
        assert!(Predicate::cmp(0, CmpOp::Eq, 1i64).eval(&t));
        assert!(Predicate::cmp(0, CmpOp::Ne, 2i64).eval(&t));
        assert!(Predicate::cmp(1, CmpOp::Le, 3i64).eval(&t));
        assert!(Predicate::cmp(1, CmpOp::Gt, 2i64).eval(&t));
        // out-of-range column is never trusted
        assert!(!Predicate::cmp(9, CmpOp::Eq, 1i64).eval(&t));
    }

    #[test]
    fn boolean_connectives() {
        let t = int_tuple(&[1, 3]);
        let p = Predicate::And(vec![
            Predicate::cmp(0, CmpOp::Eq, 1i64),
            Predicate::Not(Box::new(Predicate::cmp(1, CmpOp::Eq, 9i64))),
        ]);
        assert!(p.eval(&t));
        let q = Predicate::Or(vec![Predicate::False, Predicate::True]);
        assert!(q.eval(&t));
        assert!(!Predicate::False.eval(&t));
        assert!(Predicate::True.eval(&t));
        assert!(p.to_string().contains('∧'));
        assert!(q.to_string().contains('∨'));
    }

    #[test]
    fn example_4_conditions() {
        // PBioSQL distrusts any tuple B(i, n) from PGUS (mapping m1) with n ≥ 3.
        let policy = TrustPolicy::trust_all().with_condition(
            "m1",
            Predicate::Not(Box::new(Predicate::cmp(1, CmpOp::Ge, 3i64))),
        );
        // B(1,3) arrives via m1 with n=3: rejected.
        assert!(!policy.accepts("m1", &int_tuple(&[1, 3])));
        // B(3,2) via m1 with n=2: accepted.
        assert!(policy.accepts("m1", &int_tuple(&[3, 2])));
        // Data via other mappings is unaffected.
        assert!(policy.accepts("m4", &int_tuple(&[1, 3])));

        // Second condition: distrust B(i, n) from mapping m4 if n != 2.
        let policy = policy.with_condition("m4", Predicate::cmp(1, CmpOp::Eq, 2i64));
        assert!(!policy.accepts("m4", &int_tuple(&[3, 3])));
        assert!(policy.accepts("m4", &int_tuple(&[3, 2])));
    }

    #[test]
    fn blanket_distrust_and_defaults() {
        let policy = TrustPolicy::trust_all().distrusting("m2");
        assert!(!policy.accepts("m2", &int_tuple(&[1])));
        assert!(policy.accepts("m1", &int_tuple(&[1])));
        assert!(!policy.is_trust_all());
        assert!(TrustPolicy::trust_all().is_trust_all());
        assert!(TrustPolicy::default().accepts("anything", &int_tuple(&[])));
    }
}
