//! Reports returned by publish and update-exchange operations.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

use orchestra_datalog::EvalStats;

/// The net effect of publishing a peer's edit log (paper §3.1): how its
/// local-contributions and rejections tables changed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PublishReport {
    /// Per logical relation, the number of new local contributions.
    pub contributions_added: BTreeMap<String, usize>,
    /// Per logical relation, the number of contributions retracted.
    pub contributions_retracted: BTreeMap<String, usize>,
    /// Per logical relation, the number of new rejections (curation
    /// deletions of imported data).
    pub rejections_added: BTreeMap<String, usize>,
}

impl PublishReport {
    /// Total number of published operations.
    pub fn total_ops(&self) -> usize {
        self.contributions_added.values().sum::<usize>()
            + self.contributions_retracted.values().sum::<usize>()
            + self.rejections_added.values().sum::<usize>()
    }

    /// True if nothing was published.
    pub fn is_empty(&self) -> bool {
        self.total_ops() == 0
    }
}

impl fmt::Display for PublishReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "published: +{} contributions, -{} retractions, {} rejections",
            self.contributions_added.values().sum::<usize>(),
            self.contributions_retracted.values().sum::<usize>(),
            self.rejections_added.values().sum::<usize>()
        )
    }
}

/// Which update-exchange strategy produced an [`ExchangeReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExchangeStrategy {
    /// Full recomputation of all derived relations from base data.
    FullRecomputation,
    /// Incremental insertion propagation (§4.2, delta rules).
    IncrementalInsertion,
    /// The provenance-guided incremental deletion algorithm (Figure 3).
    IncrementalDeletion,
    /// The DRed over-delete / re-derive baseline.
    DRed,
}

impl fmt::Display for ExchangeStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExchangeStrategy::FullRecomputation => "full-recomputation",
            ExchangeStrategy::IncrementalInsertion => "incremental-insertion",
            ExchangeStrategy::IncrementalDeletion => "incremental-deletion",
            ExchangeStrategy::DRed => "dred",
        };
        write!(f, "{s}")
    }
}

/// The outcome of one update-exchange operation.
#[derive(Debug, Clone)]
pub struct ExchangeReport {
    /// The strategy that was executed.
    pub strategy: ExchangeStrategy,
    /// Number of tuples inserted into derived relations, per relation.
    pub inserted: BTreeMap<String, usize>,
    /// Number of tuples deleted from derived relations, per relation.
    pub deleted: BTreeMap<String, usize>,
    /// Datalog engine statistics accumulated during the operation.
    pub eval_stats: EvalStats,
    /// Wall-clock duration of the operation.
    pub duration: Duration,
}

impl ExchangeReport {
    /// Create an empty report for a strategy.
    pub fn new(strategy: ExchangeStrategy) -> Self {
        ExchangeReport {
            strategy,
            inserted: BTreeMap::new(),
            deleted: BTreeMap::new(),
            eval_stats: EvalStats::new(),
            duration: Duration::ZERO,
        }
    }

    /// Total tuples inserted across relations.
    pub fn total_inserted(&self) -> usize {
        self.inserted.values().sum()
    }

    /// Total tuples deleted across relations.
    pub fn total_deleted(&self) -> usize {
        self.deleted.values().sum()
    }

    /// Record insertions for a relation.
    pub fn add_inserted(&mut self, relation: &str, count: usize) {
        if count > 0 {
            *self.inserted.entry(relation.to_string()).or_default() += count;
        }
    }

    /// Record deletions for a relation.
    pub fn add_deleted(&mut self, relation: &str, count: usize) {
        if count > 0 {
            *self.deleted.entry(relation.to_string()).or_default() += count;
        }
    }

    /// Merge another report's counters (keeps this report's strategy).
    pub fn merge(&mut self, other: &ExchangeReport) {
        for (r, c) in &other.inserted {
            *self.inserted.entry(r.clone()).or_default() += c;
        }
        for (r, c) in &other.deleted {
            *self.deleted.entry(r.clone()).or_default() += c;
        }
        self.eval_stats += other.eval_stats;
        self.duration += other.duration;
    }
}

impl fmt::Display for ExchangeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] +{} tuples, -{} tuples in {:?} ({})",
            self.strategy,
            self.total_inserted(),
            self.total_deleted(),
            self.duration,
            self.eval_stats
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_report_totals() {
        let mut r = PublishReport::default();
        assert!(r.is_empty());
        r.contributions_added.insert("B".into(), 2);
        r.rejections_added.insert("B".into(), 1);
        assert_eq!(r.total_ops(), 3);
        assert!(!r.is_empty());
        assert!(r.to_string().contains("+2"));
    }

    #[test]
    fn exchange_report_accumulates() {
        let mut r = ExchangeReport::new(ExchangeStrategy::IncrementalInsertion);
        r.add_inserted("B_i", 5);
        r.add_inserted("B_i", 3);
        r.add_deleted("B_o", 2);
        r.add_inserted("B_o", 0); // ignored
        assert_eq!(r.total_inserted(), 8);
        assert_eq!(r.total_deleted(), 2);
        assert!(r.to_string().contains("incremental-insertion"));

        let mut other = ExchangeReport::new(ExchangeStrategy::DRed);
        other.add_deleted("B_o", 4);
        r.merge(&other);
        assert_eq!(r.total_deleted(), 6);
        assert_eq!(r.strategy, ExchangeStrategy::IncrementalInsertion);
    }

    #[test]
    fn strategy_labels() {
        assert_eq!(ExchangeStrategy::DRed.to_string(), "dred");
        assert_eq!(
            ExchangeStrategy::FullRecomputation.to_string(),
            "full-recomputation"
        );
    }
}
