//! Durable operation of a [`Cdss`]: epoch logging, checkpoints, and crash
//! recovery (built on `orchestra-persist`).
//!
//! The paper's prototype keeps peers' published update logs and computed
//! instances in DB2 / Berkeley DB under Tukwila (§5); this module is the
//! equivalent for the in-memory engine. The durable artifacts are:
//!
//! * an **epoch WAL**: every [`Cdss::update_exchange`] on a peer with
//!   pending edits first appends the peer's complete pending edit logs as
//!   one epoch record (write-ahead), then publishes and propagates them;
//! * a **snapshot** installed by [`Cdss::checkpoint`]: the system manifest
//!   (peers, mappings, trust policies, engine, provenance encoding), the
//!   full auxiliary database including all provenance relations, the
//!   pending edit logs, and the epoch watermark.
//!
//! [`Cdss::open_or_recover`] restores a directory's CDSS: load the latest
//! snapshot, rebuild the system from the manifest, restore the database and
//! provenance graph, then replay every WAL epoch past the snapshot's
//! watermark through the ordinary incremental update-exchange machinery —
//! the recovered instance is identical to the pre-crash one because update
//! exchange is a deterministic function of the published epochs. A corrupt
//! WAL tail (torn final write, flipped bits) is detected by CRC framing,
//! reported in the [`RecoveryReport`], and truncated away so the log is
//! clean for new epochs.
//!
//! Durability covers the publish/update-exchange lifecycle. The direct
//! batch APIs ([`Cdss::apply_insertions_incremental`] and friends) bypass
//! the edit-log path by design (they exist for the benchmark harness); call
//! [`Cdss::checkpoint`] after using them on a persistent CDSS.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use orchestra_datalog::atom::Atom;
use orchestra_datalog::term::Term;
use orchestra_datalog::EngineKind;
use orchestra_mappings::{ProvenanceEncoding, Tgd};
use orchestra_persist::codec::{Decode, Encode, Reader, Writer};
use orchestra_persist::snapshot::SnapshotRef;
use orchestra_persist::{EpochRecord, PendingLogs, PersistentStore};
use orchestra_storage::{EditLog, RelationSchema, Value};

use crate::cdss::Cdss;
use crate::error::CdssError;
use crate::peer::Peer;
use crate::trust::TrustPolicy;
use crate::Result;

/// Version byte of the manifest encoding.
const MANIFEST_VERSION: u8 = 1;

/// The persistence handle attached to a durable [`Cdss`]. During recovery
/// replay no handle is attached yet, which is what keeps replayed exchanges
/// from re-appending their epochs.
#[derive(Debug)]
pub(crate) struct PersistHandle {
    pub(crate) store: PersistentStore,
}

/// What [`Cdss::open_or_recover`] found and did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Epoch watermark of the snapshot the recovery started from.
    pub snapshot_epoch: u64,
    /// Number of WAL epochs replayed on top of the snapshot.
    pub replayed_epochs: usize,
    /// Description of the corrupt WAL tail, if one was found (it has been
    /// truncated away; the recovered state covers everything before it).
    pub corrupt_tail: Option<String>,
}

// ---------------------------------------------------------------------
// Manifest: the structural state of the system, everything CdssBuilder
// needs to reconstruct an empty replica of the CDSS.
// ---------------------------------------------------------------------

pub(crate) struct Manifest {
    peers: Vec<Peer>,
    tgds: Vec<Tgd>,
    policies: Vec<(String, TrustPolicy)>,
    engine: EngineKind,
    encoding: ProvenanceEncoding,
}

/// Tgds are stored structurally (relation + terms per atom), not as
/// re-rendered text: `Display` does not escape quotes in text constants,
/// so a textual round-trip could produce unparseable mappings.
fn encode_atoms(atoms: &[Atom], w: &mut Writer) {
    w.put_u32(atoms.len() as u32);
    for atom in atoms {
        w.put_str(&atom.relation);
        w.put_u32(atom.terms.len() as u32);
        for term in &atom.terms {
            match term {
                Term::Var(v) => {
                    w.put_u8(0);
                    w.put_str(v);
                }
                Term::Const(c) => {
                    w.put_u8(1);
                    c.encode(w);
                }
                // Tgd::validate rejects Skolem terms at construction.
                Term::Skolem(..) => unreachable!("tgds cannot contain Skolem terms"),
            }
        }
    }
}

fn decode_atoms(r: &mut Reader<'_>) -> orchestra_persist::Result<Vec<Atom>> {
    use orchestra_persist::PersistError;
    let natoms = r.get_u32()? as usize;
    let mut atoms = Vec::with_capacity(natoms.min(1 << 12));
    for _ in 0..natoms {
        let relation = r.get_str()?.to_string();
        let nterms = r.get_u32()? as usize;
        let mut terms = Vec::with_capacity(nterms.min(1 << 12));
        for _ in 0..nterms {
            let offset = r.offset();
            terms.push(match r.get_u8()? {
                0 => Term::Var(r.get_str()?.to_string()),
                1 => Term::Const(Value::decode(r)?),
                tag => {
                    return Err(PersistError::corrupt(
                        offset,
                        format!("unknown term tag {tag}"),
                    ))
                }
            });
        }
        atoms.push(Atom { relation, terms });
    }
    Ok(atoms)
}

impl Manifest {
    pub(crate) fn from_cdss(cdss: &Cdss) -> Self {
        let system = cdss.mapping_system();
        Manifest {
            peers: cdss
                .peer_ids()
                .iter()
                .map(|id| cdss.peer(id).expect("listed peer exists").clone())
                .collect(),
            tgds: system.tgds.clone(),
            policies: cdss
                .peer_ids()
                .iter()
                .map(|id| (id.clone(), cdss.trust_policy(id)))
                .filter(|(_, p)| !p.is_trust_all())
                .collect(),
            engine: cdss.engine(),
            encoding: system.encoding,
        }
    }

    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u8(MANIFEST_VERSION);
        w.put_u32(self.peers.len() as u32);
        for peer in &self.peers {
            w.put_str(&peer.id);
            w.put_u32(peer.relations.len() as u32);
            for schema in &peer.relations {
                schema.encode(&mut w);
            }
        }
        w.put_u32(self.tgds.len() as u32);
        for tgd in &self.tgds {
            w.put_str(&tgd.name);
            encode_atoms(&tgd.lhs, &mut w);
            encode_atoms(&tgd.rhs, &mut w);
        }
        w.put_u32(self.policies.len() as u32);
        for (peer, policy) in &self.policies {
            w.put_str(peer);
            policy.encode(&mut w);
        }
        w.put_u8(match self.engine {
            EngineKind::Batch => 0,
            EngineKind::Pipelined => 1,
        });
        w.put_u8(match self.encoding {
            ProvenanceEncoding::CompositePerTgd => 0,
            ProvenanceEncoding::PerHeadAtom => 1,
        });
        w.into_bytes()
    }

    pub(crate) fn decode(bytes: &[u8]) -> orchestra_persist::Result<Self> {
        use orchestra_persist::PersistError;
        let mut r = Reader::new(bytes);
        let version = r.get_u8()?;
        if version != MANIFEST_VERSION {
            return Err(PersistError::UnsupportedVersion {
                artifact: "manifest",
                version,
            });
        }
        let npeers = r.get_u32()? as usize;
        let mut peers = Vec::with_capacity(npeers.min(1 << 12));
        for _ in 0..npeers {
            let id = r.get_str()?.to_string();
            let nrel = r.get_u32()? as usize;
            let mut relations = Vec::with_capacity(nrel.min(1 << 12));
            for _ in 0..nrel {
                relations.push(RelationSchema::decode(&mut r)?);
            }
            peers.push(Peer::new(id, relations));
        }
        let ntgds = r.get_u32()? as usize;
        let mut tgds = Vec::with_capacity(ntgds.min(1 << 12));
        for _ in 0..ntgds {
            let name = r.get_str()?.to_string();
            let lhs = decode_atoms(&mut r)?;
            let rhs = decode_atoms(&mut r)?;
            let tgd = Tgd::new(name, lhs, rhs).map_err(|e| {
                PersistError::corrupt(r.offset(), format!("invalid tgd in manifest: {e}"))
            })?;
            tgds.push(tgd);
        }
        let npol = r.get_u32()? as usize;
        let mut policies = Vec::with_capacity(npol.min(1 << 12));
        for _ in 0..npol {
            let peer = r.get_str()?.to_string();
            policies.push((peer, TrustPolicy::decode(&mut r)?));
        }
        let offset = r.offset();
        let engine = match r.get_u8()? {
            0 => EngineKind::Batch,
            1 => EngineKind::Pipelined,
            tag => {
                return Err(PersistError::corrupt(
                    offset,
                    format!("unknown engine tag {tag}"),
                ))
            }
        };
        let offset = r.offset();
        let encoding = match r.get_u8()? {
            0 => ProvenanceEncoding::CompositePerTgd,
            1 => ProvenanceEncoding::PerHeadAtom,
            tag => {
                return Err(PersistError::corrupt(
                    offset,
                    format!("unknown encoding tag {tag}"),
                ))
            }
        };
        if !r.is_at_end() {
            return Err(PersistError::corrupt(r.offset(), "trailing manifest bytes"));
        }
        Ok(Manifest {
            peers,
            tgds,
            policies,
            engine,
            encoding,
        })
    }

    /// Reconstruct an empty CDSS with this manifest's structure.
    fn build_cdss(&self) -> Result<Cdss> {
        let mut builder = crate::builder::CdssBuilder::new()
            .engine(self.engine)
            .provenance_encoding(self.encoding);
        for peer in &self.peers {
            builder = builder.add_peer(peer.id.clone(), peer.relations.clone());
        }
        for tgd in &self.tgds {
            builder = builder.add_mapping(tgd.clone());
        }
        for (peer, policy) in &self.policies {
            builder = builder.trust_policy(peer.clone(), policy.clone());
        }
        builder.build()
    }
}

// ---------------------------------------------------------------------
// Cdss durability API
// ---------------------------------------------------------------------

impl Cdss {
    /// Attach persistence to a freshly built CDSS (via
    /// [`crate::CdssBuilder::with_persistence`]): create the directory,
    /// refuse to clobber existing state, and write the initial snapshot so
    /// the manifest is durable before any epoch.
    pub(crate) fn attach_persistence(&mut self, dir: PathBuf) -> Result<()> {
        if PersistentStore::holds_state(&dir) {
            return Err(CdssError::Persistence(format!(
                "directory {} already holds persisted CDSS state; use Cdss::open_or_recover",
                dir.display()
            )));
        }
        let mut store = PersistentStore::open(dir).map_err(CdssError::Persist)?;
        let manifest = Manifest::from_cdss(self).encode();
        let pending = self.pending_snapshot();
        store
            .checkpoint(SnapshotRef {
                epoch: self.epoch,
                manifest: &manifest,
                db: &self.db,
                pending: &pending,
            })
            .map_err(CdssError::Persist)?;
        self.persistence = Some(PersistHandle { store });
        Ok(())
    }

    /// Is this CDSS backed by a persistence directory?
    pub fn is_persistent(&self) -> bool {
        self.persistence.is_some()
    }

    /// The persistence directory, if attached.
    pub fn persistence_dir(&self) -> Option<&Path> {
        self.persistence.as_ref().map(|h| h.store.dir())
    }

    /// Number of epochs durably published so far.
    pub fn current_epoch(&self) -> u64 {
        self.epoch
    }

    /// Control whether epoch appends fsync (defaults to true). Benchmarks
    /// turn this off to measure framing throughput without device latency.
    pub fn set_wal_sync(&mut self, sync: bool) -> Result<()> {
        let h = self
            .persistence
            .as_mut()
            .ok_or_else(|| CdssError::Persistence("CDSS is not persistent".into()))?;
        h.store.set_sync_on_append(sync);
        Ok(())
    }

    /// Clone only the pending edit logs into the snapshot's wire shape (the
    /// database itself is encoded by reference — see [`SnapshotRef`]).
    fn pending_snapshot(&self) -> Vec<PendingLogs> {
        self.pending
            .iter()
            .map(|(peer, logs)| PendingLogs {
                peer: peer.clone(),
                logs: logs.values().cloned().collect(),
            })
            .collect()
    }

    /// Checkpoint: atomically install a snapshot of the full current state
    /// and reset the WAL (its epochs are folded into the snapshot).
    ///
    /// Checkpoint time is also when the value pool is compacted, under the
    /// [`crate::CompactionPolicy`]: the snapshot encoder already writes a
    /// canonical dictionary of live values (the on-disk v2 codec is
    /// unchanged by compaction — only in-memory ids shrink), so folding the
    /// WAL is the natural moment to shed dead intern memory too.
    pub fn checkpoint(&mut self) -> Result<()> {
        if self.persistence.is_none() {
            return Err(CdssError::Persistence("CDSS is not persistent".into()));
        }
        let _span = orchestra_obs::span("checkpoint", "core");
        let start = std::time::Instant::now();
        self.maybe_compact();
        let manifest = Manifest::from_cdss(self).encode();
        let pending = self.pending_snapshot();
        let snapshot = SnapshotRef {
            epoch: self.epoch,
            manifest: &manifest,
            db: &self.db,
            pending: &pending,
        };
        let h = self.persistence.as_mut().expect("checked above");
        h.store.checkpoint(snapshot).map_err(CdssError::Persist)?;
        // Checkpoints follow the direct batch APIs (which do publish their
        // data) but may also follow a compaction; refresh the view so its
        // counters (durable epoch, compactions) are current.
        self.publish_snapshot();
        orchestra_obs::histogram("checkpoint_seconds").observe(start.elapsed());
        orchestra_obs::counter("checkpoints_total").inc();
        Ok(())
    }

    /// Write-ahead hook called at the start of [`Cdss::update_exchange`]:
    /// if this CDSS is persistent, append the peer's pending edit logs as
    /// the next epoch before they are published. During recovery replay no
    /// handle is attached yet, so replayed exchanges do not re-append.
    pub(crate) fn log_pending_epoch(&mut self, peer: &str) -> Result<()> {
        if self.persistence.is_none() {
            return Ok(());
        }
        let Some(logs) = self.pending.get(peer) else {
            return Ok(());
        };
        let logs: Vec<EditLog> = logs.values().filter(|l| !l.is_empty()).cloned().collect();
        if logs.is_empty() {
            return Ok(());
        }
        let record = EpochRecord {
            epoch: self.epoch + 1,
            peer: peer.to_string(),
            logs,
        };
        let h = self.persistence.as_mut().expect("checked above");
        h.store.append_epoch(&record).map_err(CdssError::Persist)?;
        self.epoch += 1;
        Ok(())
    }

    /// Reopen a persisted CDSS: load the snapshot, rebuild the system from
    /// its manifest, restore the database, provenance graph and pending
    /// logs, then replay every WAL epoch past the snapshot watermark
    /// through the ordinary incremental update-exchange machinery.
    ///
    /// A corrupt WAL tail is truncated away and reported in the
    /// [`RecoveryReport`]; everything before it is recovered.
    pub fn open_or_recover(dir: impl Into<PathBuf>) -> Result<(Cdss, RecoveryReport)> {
        let dir = dir.into();
        let _span = orchestra_obs::span("recover", "core");
        let mut store = PersistentStore::open(&dir).map_err(CdssError::Persist)?;
        let snapshot = store
            .load_snapshot()
            .map_err(CdssError::Persist)?
            .ok_or_else(|| {
                CdssError::Persistence(format!(
                    "directory {} holds no snapshot; build a CDSS with_persistence first",
                    dir.display()
                ))
            })?;

        let manifest = Manifest::decode(&snapshot.manifest).map_err(CdssError::Persist)?;
        let mut cdss = manifest.build_cdss()?;

        // Restore state as of the snapshot.
        cdss.db = snapshot.db;
        cdss.epoch = snapshot.epoch;
        cdss.pending = snapshot
            .pending
            .into_iter()
            .map(|p| {
                let logs: BTreeMap<String, EditLog> = p
                    .logs
                    .into_iter()
                    .map(|l| (l.relation().to_string(), l))
                    .collect();
                (p.peer, logs)
            })
            .collect();
        {
            // The snapshot carries no graph; it is rebuilt lazily on first
            // provenance read.
            let (_system, _policies, _owner, _db, graph, _plans, _engine, _pool) =
                cdss.split_for_eval();
            graph.invalidate();
        }
        // The build published an empty view before `cdss.db` was swapped in;
        // re-publish so readers of the recovered CDSS start at the restored
        // state.
        cdss.publish_snapshot();

        // Replay the WAL past the snapshot watermark. Recording is off (no
        // persistence handle yet), so replayed exchanges do not re-append.
        let scanned = store.replay_and_repair().map_err(CdssError::Persist)?;
        let mut report = RecoveryReport {
            snapshot_epoch: snapshot.epoch,
            replayed_epochs: 0,
            corrupt_tail: scanned.corruption.clone(),
        };
        for record in scanned.records {
            if record.epoch <= snapshot.epoch {
                continue;
            }
            let logs: BTreeMap<String, EditLog> = record
                .logs
                .into_iter()
                .map(|l| (l.relation().to_string(), l))
                .collect();
            cdss.pending.insert(record.peer.clone(), logs);
            cdss.update_exchange(&record.peer)?;
            cdss.epoch = record.epoch;
            report.replayed_epochs += 1;
        }
        // Replayed exchanges published as they went, but the epoch watermark
        // is restored after each one; refresh the view's counters.
        cdss.publish_snapshot();

        cdss.persistence = Some(PersistHandle { store });
        if report.replayed_epochs > 0 || report.corrupt_tail.is_some() {
            let mut fields = vec![
                ("dir", dir.display().to_string()),
                ("snapshot_epoch", report.snapshot_epoch.to_string()),
                ("replayed_epochs", report.replayed_epochs.to_string()),
            ];
            if let Some(tail) = &report.corrupt_tail {
                fields.push(("corrupt_tail", tail.clone()));
            }
            orchestra_obs::log::info("core", "recovered", &fields);
        }
        Ok((cdss, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CdssBuilder;
    use crate::trust::{CmpOp, Predicate, TrustPolicy};
    use orchestra_persist::testutil::TempDir;
    use orchestra_storage::tuple::int_tuple;
    use orchestra_storage::RelationSchema;

    fn persistent_example(dir: &Path) -> Cdss {
        CdssBuilder::new()
            .add_peer(
                "PGUS",
                vec![RelationSchema::new("G", &["id", "can", "nam"])],
            )
            .add_peer("PBioSQL", vec![RelationSchema::new("B", &["id", "nam"])])
            .add_peer("PuBio", vec![RelationSchema::new("U", &["nam", "can"])])
            .add_mapping_str("m1", "G(i, c, n) -> B(i, n)")
            .add_mapping_str("m2", "G(i, c, n) -> U(n, c)")
            .add_mapping_str("m3", "B(i, n) -> U(n, c)")
            .add_mapping_str("m4", "B(i, c), U(n, c) -> B(i, n)")
            .trust_policy(
                "PBioSQL",
                TrustPolicy::trust_all().with_condition("m4", Predicate::cmp(1, CmpOp::Ne, 99i64)),
            )
            .with_persistence(dir)
            .build()
            .unwrap()
    }

    /// Publish two epochs from different peers.
    fn run_two_epochs(cdss: &mut Cdss) {
        cdss.insert_local("PGUS", "G", int_tuple(&[1, 2, 3]))
            .unwrap();
        cdss.insert_local("PGUS", "G", int_tuple(&[3, 5, 2]))
            .unwrap();
        cdss.update_exchange("PGUS").unwrap();
        cdss.insert_local("PBioSQL", "B", int_tuple(&[3, 5]))
            .unwrap();
        cdss.delete_local("PBioSQL", "B", int_tuple(&[3, 2]))
            .unwrap();
        cdss.update_exchange("PBioSQL").unwrap();
    }

    #[test]
    fn manifest_roundtrips_structure_policies_and_engine() {
        let dir = TempDir::new("core-manifest");
        let cdss = persistent_example(dir.path());
        let bytes = Manifest::from_cdss(&cdss).encode();
        let back = Manifest::decode(&bytes).unwrap();
        let rebuilt = back.build_cdss().unwrap();
        assert_eq!(rebuilt.peer_ids(), cdss.peer_ids());
        assert_eq!(rebuilt.engine(), cdss.engine());
        assert_eq!(
            rebuilt.mapping_system().tgds.len(),
            cdss.mapping_system().tgds.len()
        );
        assert_eq!(
            rebuilt.trust_policy("PBioSQL"),
            cdss.trust_policy("PBioSQL")
        );
        assert_eq!(
            rebuilt.database().relation_names(),
            cdss.database().relation_names(),
            "all internal and provenance relations re-registered"
        );
    }

    #[test]
    fn tgds_with_quoted_text_constants_survive_the_manifest() {
        // Textual re-rendering would break on the embedded quote/backslash;
        // the structural encoding must not.
        let dir = TempDir::new("core-tgd-const");
        let cdss = CdssBuilder::new()
            .add_peer("P1", vec![RelationSchema::new("G", &["id", "tag"])])
            .add_peer("P2", vec![RelationSchema::new("B", &["id", "tag"])])
            .add_mapping_str("m1", "G(i, t) -> B(i, \"a\\\"b\\\\c\")")
            .with_persistence(dir.path())
            .build()
            .unwrap();
        let bytes = Manifest::from_cdss(&cdss).encode();
        let back = Manifest::decode(&bytes).unwrap();
        let rebuilt = back.build_cdss().unwrap();
        assert_eq!(
            rebuilt.mapping_system().tgds,
            cdss.mapping_system().tgds,
            "tgd with quote and backslash in a constant round-trips exactly"
        );
    }

    #[test]
    fn recovery_survives_a_headerless_wal_from_a_torn_checkpoint() {
        // Crash window inside checkpoint: snapshot installed, WAL truncated
        // but its header not yet written. Recovery must treat that as an
        // empty log, not corruption.
        let dir = TempDir::new("core-torn-checkpoint");
        let mut cdss = persistent_example(dir.path());
        run_two_epochs(&mut cdss);
        cdss.checkpoint().unwrap();
        drop(cdss);
        std::fs::write(dir.path().join(orchestra_persist::store::WAL_FILE), b"").unwrap();

        let (recovered, report) = Cdss::open_or_recover(dir.path()).unwrap();
        assert_eq!(report.snapshot_epoch, 2);
        assert_eq!(report.replayed_epochs, 0);
        assert_eq!(recovered.current_epoch(), 2);
    }

    #[test]
    fn epochs_are_recorded_and_counted() {
        let dir = TempDir::new("core-epochs");
        let mut cdss = persistent_example(dir.path());
        assert!(cdss.is_persistent());
        assert_eq!(cdss.current_epoch(), 0);
        run_two_epochs(&mut cdss);
        assert_eq!(cdss.current_epoch(), 2);
        // An exchange with nothing pending does not burn an epoch.
        cdss.update_exchange("PuBio").unwrap();
        assert_eq!(cdss.current_epoch(), 2);
    }

    #[test]
    fn recovery_reproduces_instances_and_provenance() {
        let dir = TempDir::new("core-recover");
        let mut cdss = persistent_example(dir.path());
        run_two_epochs(&mut cdss);
        let before_db = cdss.database().clone();
        let before_b = cdss.certain_answers("PBioSQL", "B").unwrap();
        drop(cdss);

        let (recovered, report) = Cdss::open_or_recover(dir.path()).unwrap();
        assert_eq!(report.snapshot_epoch, 0);
        assert_eq!(report.replayed_epochs, 2);
        assert!(report.corrupt_tail.is_none());
        assert_eq!(recovered.current_epoch(), 2);
        assert_eq!(recovered.database(), &before_db, "entire store identical");
        assert_eq!(recovered.certain_answers("PBioSQL", "B").unwrap(), before_b);
        // Provenance graph was rebuilt: derivability still answers.
        assert!(recovered.is_derivable("B", &int_tuple(&[1, 3])));
    }

    #[test]
    fn checkpoint_then_recover_skips_replay() {
        let dir = TempDir::new("core-checkpoint");
        let mut cdss = persistent_example(dir.path());
        run_two_epochs(&mut cdss);
        cdss.checkpoint().unwrap();
        // One more epoch after the checkpoint.
        cdss.insert_local("PuBio", "U", int_tuple(&[2, 5])).unwrap();
        cdss.update_exchange("PuBio").unwrap();
        let before_db = cdss.database().clone();
        drop(cdss);

        let (recovered, report) = Cdss::open_or_recover(dir.path()).unwrap();
        assert_eq!(report.snapshot_epoch, 2);
        assert_eq!(report.replayed_epochs, 1);
        assert_eq!(recovered.database(), &before_db);
    }

    #[test]
    fn recovered_cdss_keeps_recording_epochs() {
        let dir = TempDir::new("core-continue");
        let mut cdss = persistent_example(dir.path());
        run_two_epochs(&mut cdss);
        drop(cdss);

        let (mut recovered, _) = Cdss::open_or_recover(dir.path()).unwrap();
        recovered
            .insert_local("PuBio", "U", int_tuple(&[7, 7]))
            .unwrap();
        recovered.update_exchange("PuBio").unwrap();
        assert_eq!(recovered.current_epoch(), 3);
        let before_db = recovered.database().clone();
        drop(recovered);

        let (again, report) = Cdss::open_or_recover(dir.path()).unwrap();
        assert_eq!(report.replayed_epochs, 3);
        assert_eq!(again.database(), &before_db);
    }

    #[test]
    fn pending_unpublished_edits_survive_via_checkpoint() {
        let dir = TempDir::new("core-pending");
        let mut cdss = persistent_example(dir.path());
        run_two_epochs(&mut cdss);
        cdss.insert_local("PuBio", "U", int_tuple(&[4, 4])).unwrap();
        cdss.checkpoint().unwrap();
        drop(cdss);

        let (mut recovered, _) = Cdss::open_or_recover(dir.path()).unwrap();
        assert_eq!(recovered.pending_edit_count("PuBio"), 1);
        recovered.update_exchange("PuBio").unwrap();
        assert!(recovered
            .certain_answers("PuBio", "U")
            .unwrap()
            .contains(&int_tuple(&[4, 4])));
    }

    #[test]
    fn building_over_existing_state_is_refused() {
        let dir = TempDir::new("core-refuse");
        let mut cdss = persistent_example(dir.path());
        run_two_epochs(&mut cdss);
        drop(cdss);
        let err = CdssBuilder::new()
            .add_peer("P", vec![RelationSchema::new("R", &["x"])])
            .with_persistence(dir.path())
            .build()
            .unwrap_err();
        assert!(matches!(err, CdssError::Persistence(_)), "{err}");
    }

    #[test]
    fn recovering_an_empty_directory_is_an_error() {
        let dir = TempDir::new("core-empty");
        let err = Cdss::open_or_recover(dir.path().join("nothing")).unwrap_err();
        assert!(matches!(err, CdssError::Persistence(_)), "{err}");
    }

    #[test]
    fn non_persistent_cdss_rejects_durability_calls() {
        let mut cdss = CdssBuilder::new()
            .add_peer("P", vec![RelationSchema::new("R", &["x"])])
            .build()
            .unwrap();
        assert!(!cdss.is_persistent());
        assert!(cdss.persistence_dir().is_none());
        assert!(matches!(cdss.checkpoint(), Err(CdssError::Persistence(_))));
        assert!(matches!(
            cdss.set_wal_sync(false),
            Err(CdssError::Persistence(_))
        ));
    }

    #[test]
    fn corrupt_wal_tail_is_reported_and_survived() {
        let dir = TempDir::new("core-corrupt");
        let mut cdss = persistent_example(dir.path());
        run_two_epochs(&mut cdss);
        drop(cdss);

        // Chop bytes off the WAL's final record (torn write).
        let wal_path = dir.path().join(orchestra_persist::store::WAL_FILE);
        let len = std::fs::metadata(&wal_path).unwrap().len();
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&wal_path)
            .unwrap();
        f.set_len(len - 4).unwrap();
        drop(f);

        let (recovered, report) = Cdss::open_or_recover(dir.path()).unwrap();
        assert!(report.corrupt_tail.is_some());
        assert_eq!(report.replayed_epochs, 1, "only the intact epoch replays");
        assert_eq!(recovered.current_epoch(), 1);

        // The recovered state equals a fresh run of epoch 1 alone.
        let dir2 = TempDir::new("core-corrupt-ref");
        let mut reference = persistent_example(dir2.path());
        reference
            .insert_local("PGUS", "G", int_tuple(&[1, 2, 3]))
            .unwrap();
        reference
            .insert_local("PGUS", "G", int_tuple(&[3, 5, 2]))
            .unwrap();
        reference.update_exchange("PGUS").unwrap();
        assert_eq!(recovered.database(), reference.database());
    }
}
