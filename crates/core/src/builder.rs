//! Builder for assembling a [`Cdss`] from peers, mappings and trust policies.

use std::collections::BTreeMap;

use orchestra_datalog::EngineKind;
use orchestra_mappings::{MappingSystem, ProvenanceEncoding, Tgd};
use orchestra_storage::{Database, RelationSchema};

use crate::cdss::{Cdss, CompactionPolicy};
use crate::error::CdssError;
use crate::peer::{Peer, PeerId};
use crate::trust::TrustPolicy;
use crate::Result;

/// Builder for a [`Cdss`].
///
/// ```
/// use orchestra_core::CdssBuilder;
/// use orchestra_storage::RelationSchema;
///
/// let cdss = CdssBuilder::new()
///     .add_peer("PGUS", vec![RelationSchema::new("G", &["id", "can", "nam"])])
///     .add_peer("PBioSQL", vec![RelationSchema::new("B", &["id", "nam"])])
///     .add_mapping_str("m1", "G(i, c, n) -> B(i, n)")
///     .build()
///     .unwrap();
/// assert_eq!(cdss.peer_ids().len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct CdssBuilder {
    peers: Vec<Peer>,
    tgds: Vec<Tgd>,
    policies: BTreeMap<PeerId, TrustPolicy>,
    engine: Option<EngineKind>,
    encoding: ProvenanceEncoding,
    persist_dir: Option<std::path::PathBuf>,
    compaction: Option<CompactionPolicy>,
    eval_threads: Option<usize>,
    errors: Vec<CdssError>,
}

impl CdssBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        CdssBuilder::default()
    }

    /// Add a peer with its logical relations.
    pub fn add_peer(mut self, id: impl Into<PeerId>, relations: Vec<RelationSchema>) -> Self {
        self.peers.push(Peer::new(id, relations));
        self
    }

    /// Add a schema mapping (tgd).
    pub fn add_mapping(mut self, tgd: Tgd) -> Self {
        self.tgds.push(tgd);
        self
    }

    /// Add a schema mapping from its textual form, e.g.
    /// `"G(i, c, n) -> B(i, n)"`. Parse errors are deferred to
    /// [`CdssBuilder::build`].
    pub fn add_mapping_str(mut self, name: impl Into<String>, text: &str) -> Self {
        match Tgd::parse(name, text) {
            Ok(tgd) => self.tgds.push(tgd),
            Err(e) => self.errors.push(e.into()),
        }
        self
    }

    /// Set the trust policy of a peer (defaults to trust-everything).
    pub fn trust_policy(mut self, peer: impl Into<PeerId>, policy: TrustPolicy) -> Self {
        self.policies.insert(peer.into(), policy);
        self
    }

    /// Select the execution backend (defaults to
    /// [`EngineKind::Pipelined`]).
    pub fn engine(mut self, kind: EngineKind) -> Self {
        self.engine = Some(kind);
        self
    }

    /// Select the provenance encoding (defaults to the composite mapping
    /// table of paper §5).
    pub fn provenance_encoding(mut self, encoding: ProvenanceEncoding) -> Self {
        self.encoding = encoding;
        self
    }

    /// Make the CDSS durable in `dir`: every update exchange appends the
    /// published epoch to a write-ahead log there, and
    /// [`Cdss::checkpoint`] installs full snapshots. The directory must
    /// not already hold persisted state (reopen that with
    /// [`Cdss::open_or_recover`] instead).
    pub fn with_persistence(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.persist_dir = Some(dir.into());
        self
    }

    /// Set the value-pool compaction policy (defaults to
    /// [`CompactionPolicy::default`]; see [`Cdss::maybe_compact`]).
    pub fn compaction_policy(mut self, policy: CompactionPolicy) -> Self {
        self.compaction = Some(policy);
        self
    }

    /// Pin fixpoint evaluation to `threads` workers instead of the
    /// process-global pool (see [`Cdss::set_eval_threads`]). `1` forces
    /// fully sequential evaluation.
    pub fn eval_threads(mut self, threads: usize) -> Self {
        self.eval_threads = Some(threads);
        self
    }

    /// Validate everything and construct the CDSS.
    pub fn build(self) -> Result<Cdss> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }

        // Peers must be unique and their schemas disjoint (paper §2).
        let mut peers: BTreeMap<PeerId, Peer> = BTreeMap::new();
        let mut relation_owner: BTreeMap<String, PeerId> = BTreeMap::new();
        let mut schemas: Vec<RelationSchema> = Vec::new();
        for peer in self.peers {
            if peers.contains_key(&peer.id) {
                return Err(CdssError::DuplicatePeer(peer.id));
            }
            for schema in &peer.relations {
                if let Some(owner) = relation_owner.get(schema.name()) {
                    return Err(CdssError::DuplicateRelation {
                        relation: schema.name().to_string(),
                        owner: owner.clone(),
                    });
                }
                relation_owner.insert(schema.name().to_string(), peer.id.clone());
                schemas.push(schema.clone());
            }
            peers.insert(peer.id.clone(), peer);
        }

        // Trust policies must refer to known peers and mappings.
        let mapping_names: Vec<String> = self.tgds.iter().map(|t| t.name.clone()).collect();
        for (peer, policy) in &self.policies {
            if !peers.contains_key(peer) {
                return Err(CdssError::UnknownPeer(peer.clone()));
            }
            for m in policy
                .distrusted_mappings
                .iter()
                .chain(policy.conditions.keys())
            {
                if !mapping_names.contains(m) {
                    return Err(CdssError::UnknownMapping(m.clone()));
                }
            }
        }

        // `build_unchecked` defers the weak-acyclicity verdict to the static
        // analyzer inside `from_parts`, which rejects value-inventing cycles
        // with a full `E001` diagnostic chain instead of the tgd-level bail.
        let system = MappingSystem::build_unchecked(schemas, self.tgds, self.encoding)?;
        let mut db = Database::new();
        system.register_relations(&mut db)?;

        let mut cdss = Cdss::from_parts(
            peers,
            relation_owner,
            system,
            self.policies,
            self.engine.unwrap_or(EngineKind::Pipelined),
            db,
        )?;
        if let Some(policy) = self.compaction {
            cdss.set_compaction_policy(policy);
        }
        if let Some(n) = self.eval_threads {
            cdss.set_eval_threads(n);
        }
        if let Some(dir) = self.persist_dir {
            cdss.attach_persistence(dir)?;
        }
        Ok(cdss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gus() -> Vec<RelationSchema> {
        vec![RelationSchema::new("G", &["id", "can", "nam"])]
    }
    fn biosql() -> Vec<RelationSchema> {
        vec![RelationSchema::new("B", &["id", "nam"])]
    }

    #[test]
    fn duplicate_peer_is_rejected() {
        let err = CdssBuilder::new()
            .add_peer("P", gus())
            .add_peer("P", biosql())
            .build()
            .unwrap_err();
        assert!(matches!(err, CdssError::DuplicatePeer(_)));
    }

    #[test]
    fn overlapping_schemas_are_rejected() {
        let err = CdssBuilder::new()
            .add_peer("P1", gus())
            .add_peer("P2", gus())
            .build()
            .unwrap_err();
        assert!(matches!(err, CdssError::DuplicateRelation { .. }));
    }

    #[test]
    fn bad_mapping_text_is_reported_at_build() {
        let err = CdssBuilder::new()
            .add_peer("P1", gus())
            .add_mapping_str("m1", "G(i, c, n) ->")
            .build()
            .unwrap_err();
        assert!(matches!(err, CdssError::Mapping(_)));
    }

    #[test]
    fn policies_must_reference_known_peers_and_mappings() {
        let err = CdssBuilder::new()
            .add_peer("P1", gus())
            .trust_policy("nobody", TrustPolicy::trust_all())
            .build()
            .unwrap_err();
        assert!(matches!(err, CdssError::UnknownPeer(_)));

        let err = CdssBuilder::new()
            .add_peer("P1", gus())
            .add_peer("P2", biosql())
            .add_mapping_str("m1", "G(i, c, n) -> B(i, n)")
            .trust_policy("P2", TrustPolicy::trust_all().distrusting("m99"))
            .build()
            .unwrap_err();
        assert!(matches!(err, CdssError::UnknownMapping(_)));
    }

    #[test]
    fn eval_threads_knob_pins_the_pool_size() {
        let cdss = CdssBuilder::new()
            .add_peer("PGUS", gus())
            .eval_threads(3)
            .build()
            .unwrap();
        assert_eq!(cdss.eval_threads(), 3);
    }

    #[test]
    fn successful_build_creates_internal_relations() {
        let cdss = CdssBuilder::new()
            .add_peer("PGUS", gus())
            .add_peer("PBioSQL", biosql())
            .add_mapping_str("m1", "G(i, c, n) -> B(i, n)")
            .engine(EngineKind::Batch)
            .build()
            .unwrap();
        assert_eq!(cdss.peer_ids(), vec!["PBioSQL", "PGUS"]);
        assert!(cdss.database().has_relation("B_i"));
        assert!(cdss.database().has_relation("G_l"));
        assert!(cdss.database().has_relation("P_m1"));
        assert_eq!(cdss.engine(), EngineKind::Batch);
        assert_eq!(cdss.owner_of("B"), Some("PBioSQL"));
        assert_eq!(cdss.owner_of("Z"), None);
    }
}
