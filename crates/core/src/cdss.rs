//! The [`Cdss`] type: state, local editing, publishing, provenance and
//! query APIs. The update-exchange strategies themselves (full
//! recomputation, incremental insertion/deletion, DRed) live in
//! [`crate::exchange`].

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use orchestra_datalog::rule::Rule;
use orchestra_datalog::{EngineKind, Evaluator, PlanCache};
use orchestra_mappings::MappingSystem;
use orchestra_pool::Pool;
use orchestra_provenance::{
    PageDirection, ProvenanceExpr, ProvenanceGraph, ProvenanceNeighbor, ProvenanceToken,
};
use orchestra_storage::schema::{internal_name, InternalRole};
use orchestra_storage::{
    Database, DatabaseStats, EditLog, PoolCompaction, PoolStats, RelationSource, Tuple, Value,
};

use crate::error::CdssError;
use crate::peer::{Peer, PeerId};
use crate::report::PublishReport;
use crate::trust::TrustPolicy;
use crate::view::{SnapshotMeta, SnapshotReader, SnapshotState, SnapshotView};
use crate::Result;

/// Run the static analyzer over a compiled mapping system's update-exchange
/// program. Returns the (error-free) report, or a [`CdssError::Analysis`]
/// after bumping `analyze_rejected_total{code}` for each distinct error code.
pub(crate) fn analyze_system(system: &MappingSystem) -> Result<orchestra_analyze::AnalysisReport> {
    // Acquire the headline series eagerly so the metrics exposition shows
    // `analyze_rejected_total{code="E001"}` at zero from the first
    // registration on (same pattern as `snapshot_publishes_total`).
    let _ = orchestra_obs::counter_with("analyze_rejected_total", &[("code", "E001")]);
    match analyzer_for(system).check(&system.program) {
        Ok(report) => {
            for warning in report.warnings() {
                orchestra_obs::log::warn(
                    "analyze",
                    "program-warning",
                    &[
                        ("code", warning.code.as_str().to_string()),
                        ("message", warning.message.clone()),
                    ],
                );
            }
            Ok(report)
        }
        Err(err) => {
            for code in err.error_codes() {
                orchestra_obs::counter_with("analyze_rejected_total", &[("code", code.as_str())])
                    .inc();
            }
            Err(CdssError::Analysis(err))
        }
    }
}

/// Configure the analyzer with the CDSS's schema knowledge: local-contribution
/// and rejection tables are pure base data (edbs), output and provenance
/// tables are queried by users (roots, exempt from unused-relation hygiene).
fn analyzer_for(system: &MappingSystem) -> orchestra_analyze::Analyzer {
    let idb = system.program.idb_relations();
    let mut edbs: Vec<String> = Vec::new();
    let mut roots: Vec<String> = Vec::new();
    for rel in system.logical_relations() {
        edbs.push(internal_name(&rel, InternalRole::LocalContributions));
        edbs.push(internal_name(&rel, InternalRole::Rejections));
        let input = internal_name(&rel, InternalRole::Input);
        if !idb.contains(&input) {
            // No mapping targets this relation, so its input table is base
            // data too (only ever filled by incoming update translation).
            edbs.push(input);
        }
        roots.push(internal_name(&rel, InternalRole::Output));
    }
    roots.extend(system.provenance_relations());
    orchestra_analyze::Analyzer::new()
        .with_declared_edbs(edbs)
        .with_roots(roots)
}

/// The net, normalised changes produced by publishing a peer's edit logs.
#[derive(Debug, Clone, Default)]
pub(crate) struct PublishedChanges {
    /// New local contributions per *logical* relation.
    pub contributions: BTreeMap<String, Vec<Tuple>>,
    /// Retracted local contributions per logical relation.
    pub retractions: BTreeMap<String, Vec<Tuple>>,
    /// New rejections (curation deletions of imported data) per logical
    /// relation.
    pub rejections: BTreeMap<String, Vec<Tuple>>,
}

impl PublishedChanges {
    /// True if nothing changed.
    pub fn is_empty(&self) -> bool {
        self.contributions.values().all(Vec::is_empty)
            && self.retractions.values().all(Vec::is_empty)
            && self.rejections.values().all(Vec::is_empty)
    }
}

/// When a [`Cdss`] compacts its value pool.
///
/// The intern pool is append-only between compactions, so a long-running
/// server whose workload churns *distinct* values (fresh accession numbers
/// every epoch, say) grows intern memory without bound even while every
/// relation stays small. The policy bounds it: [`Cdss::checkpoint`] (and
/// any explicit [`Cdss::maybe_compact`]) runs a compaction pass when the
/// pool is large enough to matter *and* mostly dead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionPolicy {
    /// Pools smaller than this are never compacted — the scan would cost
    /// more than the reclaimable memory.
    pub min_pool_len: usize,
    /// Compact only when at least this fraction of pool ids is dead
    /// (unreferenced by any live row), in `[0, 1]`.
    pub min_dead_ratio: f64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            min_pool_len: 4096,
            min_dead_ratio: 0.5,
        }
    }
}

impl CompactionPolicy {
    /// A policy that never compacts automatically (explicit
    /// [`Cdss::compact`] still works).
    pub fn never() -> Self {
        CompactionPolicy {
            min_pool_len: usize::MAX,
            min_dead_ratio: 1.1,
        }
    }
}

/// A collaborative data sharing system: peers, mappings, trust policies, the
/// shared auxiliary store with all internal and provenance relations, and the
/// provenance graph.
#[derive(Debug)]
pub struct Cdss {
    peers: BTreeMap<PeerId, Peer>,
    relation_owner: BTreeMap<String, PeerId>,
    system: Arc<MappingSystem>,
    policies: BTreeMap<PeerId, TrustPolicy>,
    engine: EngineKind,
    pub(crate) db: Database,
    /// The provenance graph, maintained **lazily**: bulk recomputation and
    /// deletion propagation merely invalidate it, and the rebuild is paid on
    /// the next read (provenance query, derivability test, or deletion
    /// propagation). Insertion propagation extends a clean graph in place.
    /// Behind a mutex so read-side APIs (`&self`, shared across server
    /// threads) can rebuild on demand.
    graph: Mutex<GraphCache>,
    /// The cross-exchange join-plan cache: the mapping program is fixed per
    /// CDSS, so validated stratification and compiled (cost-ordered,
    /// id-resolved) plans persist here across exchanges, invalidated only
    /// when relation cardinality bands shift (see
    /// [`orchestra_datalog::PlanCache`]). Bound to `db`'s value pool.
    plans: PlanCache,
    /// Pending (unpublished) edit logs: peer → logical relation → log.
    pub(crate) pending: BTreeMap<PeerId, BTreeMap<String, EditLog>>,
    /// Durable backing store, when built with
    /// [`crate::CdssBuilder::with_persistence`] or reopened via
    /// [`Cdss::open_or_recover`].
    pub(crate) persistence: Option<crate::durability::PersistHandle>,
    /// Number of epochs durably published (0 when not persistent).
    pub(crate) epoch: u64,
    /// When to compact the value pool (checked at checkpoint time and by
    /// [`Cdss::maybe_compact`]).
    compaction: CompactionPolicy,
    /// Compaction passes run over this CDSS's lifetime (in-memory; resets
    /// on recovery, like the intern counters).
    compactions_run: u64,
    /// Memoized live-value scan: `(content stamp, live count)`. The stamp
    /// is the (monotone) sum of relation content versions plus the
    /// relation count, so repeated [`Cdss::pool_live_values`] reads on an
    /// unchanged store (a monitoring client polling `Stats`) skip the
    /// O(rows) scan. Behind a mutex so the read-side server path can
    /// update it.
    live_scan: Mutex<Option<((u64, usize), usize)>>,
    /// Snapshot-isolated read state: the copy-on-write snapshot store plus
    /// the lock-free cell readers fetch the latest [`SnapshotView`] from.
    /// Re-published at every commit point (see [`Cdss::publish_snapshot`]).
    snapshots: SnapshotState,
    /// Explicit thread pool for fixpoint evaluation, set via
    /// [`crate::CdssBuilder::eval_threads`] or [`Cdss::set_eval_threads`].
    /// `None` defers to the evaluator's default (the process-global pool,
    /// sized by `ORCHESTRA_THREADS` or the hardware).
    eval_pool: Option<orchestra_pool::Pool>,
    /// The static-analysis report of the installed mapping program. Always
    /// error-free (construction and [`Cdss::add_mapping`] reject programs
    /// with errors before installing them); kept for introspection and as a
    /// belt-and-braces gate at [`Cdss::update_exchange`] entry.
    analysis: orchestra_analyze::AnalysisReport,
}

impl Cdss {
    pub(crate) fn from_parts(
        peers: BTreeMap<PeerId, Peer>,
        relation_owner: BTreeMap<String, PeerId>,
        system: MappingSystem,
        policies: BTreeMap<PeerId, TrustPolicy>,
        engine: EngineKind,
        db: Database,
    ) -> Result<Self> {
        // Static analysis gates registration: a program that could diverge
        // (E001), is unsafe, or cannot be stratified never becomes a `Cdss`.
        let analysis = analyze_system(&system)?;
        let system = Arc::new(system);
        let snapshots = SnapshotState::new(SnapshotMeta {
            system: Arc::clone(&system),
            peers: peers.clone(),
            relation_owner: relation_owner.clone(),
        });
        let cdss = Cdss {
            peers,
            relation_owner,
            system,
            policies,
            engine,
            db,
            graph: Mutex::new(GraphCache::default()),
            plans: PlanCache::new(),
            pending: BTreeMap::new(),
            persistence: None,
            epoch: 0,
            compaction: CompactionPolicy::default(),
            compactions_run: 0,
            live_scan: Mutex::new(None),
            snapshots,
            eval_pool: None,
            analysis,
        };
        // Initial epoch: the freshly registered (empty) relations, so
        // snapshot readers are valid before the first exchange.
        cdss.publish_snapshot();
        Ok(cdss)
    }

    // ------------------------------------------------------------------
    // Snapshot-isolated reads
    // ------------------------------------------------------------------

    /// Publish the current database state as an immutable snapshot view.
    /// Called at every commit point — after an update exchange commits, a
    /// bulk apply/recomputation finishes, a pool compaction remaps ids, or
    /// a checkpoint lands — and never mid-exchange, so views are always
    /// whole-epoch instances. O(changed relations): unchanged relations
    /// are structurally shared with the previous snapshot.
    pub(crate) fn publish_snapshot(&self) {
        let _span = orchestra_obs::span("snapshot-publish", "core");
        let before = self.snapshots.published();
        self.snapshots.publish(
            &self.db,
            self.epoch,
            self.plans.hit_count(),
            self.compactions_run,
        );
        // Count content-changing publishes only, mirroring
        // `snapshots_published()` (a no-change publish mints no epoch).
        // The handle is acquired unconditionally so the series is
        // registered (at zero) from the first publication attempt on.
        let counter = orchestra_obs::counter("snapshot_publishes_total");
        let minted = self.snapshots.published().saturating_sub(before);
        if minted > 0 {
            counter.add(minted);
        }
    }

    /// The latest snapshot view: an immutable, whole-epoch read view
    /// offering the same query/provenance APIs as the live CDSS. Refreshes
    /// first, so in-process callers always see their own completed edits
    /// (a no-op when nothing changed since the last publication).
    pub fn snapshot(&self) -> Arc<SnapshotView> {
        self.publish_snapshot();
        self.snapshots.latest()
    }

    /// A cloneable, lock-free handle that reader threads use to fetch the
    /// latest snapshot view without holding any reference to the CDSS.
    /// Handles track the eager publication points (exchange commits,
    /// checkpoints, compactions, recovery) — the regime a server lives in.
    pub fn snapshot_reader(&self) -> SnapshotReader {
        self.publish_snapshot();
        self.snapshots.reader()
    }

    /// The epoch of the latest published snapshot.
    pub fn snapshot_epoch(&self) -> u64 {
        self.snapshots.latest().epoch()
    }

    /// Number of content-changing snapshot publishes over this CDSS's
    /// lifetime.
    pub fn snapshots_published(&self) -> u64 {
        self.snapshots.published()
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The identifiers of all peers, sorted.
    pub fn peer_ids(&self) -> Vec<PeerId> {
        self.peers.keys().cloned().collect()
    }

    /// Look up a peer.
    pub fn peer(&self, id: &str) -> Result<&Peer> {
        self.peers
            .get(id)
            .ok_or_else(|| CdssError::UnknownPeer(id.to_string()))
    }

    /// The peer owning a logical relation, if any.
    pub fn owner_of(&self, relation: &str) -> Option<&str> {
        self.relation_owner.get(relation).map(String::as_str)
    }

    /// The configured execution backend.
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    /// Switch the execution backend (used by the benchmark harness to compare
    /// the DB2-style and Tukwila-style engines on identical state).
    pub fn set_engine(&mut self, engine: EngineKind) {
        self.engine = engine;
    }

    /// Pin fixpoint evaluation to a dedicated pool of `threads` workers
    /// (1 = strictly sequential). The parallel engine is deterministic, so
    /// this only trades latency for cores — results are identical at any
    /// setting. Without this, evaluation uses the process-global pool.
    pub fn set_eval_threads(&mut self, threads: usize) {
        self.eval_pool = Some(orchestra_pool::Pool::new(threads));
    }

    /// The worker count fixpoint evaluation will run with (the dedicated
    /// pool's size, or the process-global pool's when none is pinned).
    pub fn eval_threads(&self) -> usize {
        self.eval_pool
            .as_ref()
            .map_or_else(|| orchestra_pool::global().threads(), Pool::threads)
    }

    /// The compiled mapping system (tgds, internal program, provenance
    /// relation layout).
    pub fn mapping_system(&self) -> &MappingSystem {
        &self.system
    }

    /// The static-analysis report of the installed mapping program. Never
    /// contains errors (programs with errors are rejected before
    /// installation); warnings persist here for introspection.
    pub fn analysis(&self) -> &orchestra_analyze::AnalysisReport {
        &self.analysis
    }

    /// Add a schema mapping to a running CDSS.
    ///
    /// The extended mapping set is recompiled and statically analyzed as a
    /// whole; if the analyzer finds errors (a value-inventing cycle the new
    /// tgd closes, say) the call fails with [`CdssError::Analysis`] and the
    /// CDSS is left exactly as it was. On success the new system is
    /// installed atomically: new internal/provenance relations are created,
    /// join plans and the provenance graph are invalidated (the program
    /// changed), a fresh snapshot is published, and — when persistent — a
    /// checkpoint folds the new mapping into the manifest so recovery sees
    /// it.
    ///
    /// Existing derived state is *not* recomputed here; the new mapping
    /// takes effect at the next [`Cdss::update_exchange`].
    pub fn add_mapping(&mut self, tgd: orchestra_mappings::Tgd) -> Result<()> {
        let _span = orchestra_obs::span("add-mapping", "core");
        if self.system.tgds.iter().any(|t| t.name == tgd.name) {
            return Err(CdssError::Mapping(
                orchestra_mappings::MappingError::InvalidTgd {
                    mapping: tgd.name.clone(),
                    message: "a mapping with this name already exists".to_string(),
                },
            ));
        }
        let schemas: Vec<_> = self.system.logical_schemas.values().cloned().collect();
        let mut tgds = self.system.tgds.clone();
        tgds.push(tgd);
        // `build_unchecked` so a weak-acyclicity violation reaches the
        // analyzer and comes back as a full E001 diagnostic chain.
        let system = MappingSystem::build_unchecked(schemas, tgds, self.system.encoding)?;
        let analysis = analyze_system(&system)?;

        // Past the gate: install. Relation registration is idempotent for
        // everything that already exists.
        system.register_relations(&mut self.db)?;
        let system = Arc::new(system);
        self.system = Arc::clone(&system);
        self.analysis = analysis;
        self.plans.invalidate_plans();
        self.graph
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
            .invalidate();
        self.snapshots.replace_meta(SnapshotMeta {
            system,
            peers: self.peers.clone(),
            relation_owner: self.relation_owner.clone(),
        });
        self.publish_snapshot();
        if self.persistence.is_some() {
            // The manifest is derived from the live tgd set; checkpointing
            // rewrites it (and folds the WAL) so recovery rebuilds the
            // extended system.
            self.checkpoint()?;
        }
        Ok(())
    }

    /// The shared auxiliary database holding every internal and provenance
    /// relation.
    pub fn database(&self) -> &Database {
        &self.db
    }

    pub(crate) fn split_for_eval(&mut self) -> EvalParts<'_> {
        (
            &self.system,
            &self.policies,
            &self.relation_owner,
            &mut self.db,
            self.graph.get_mut().unwrap_or_else(|e| e.into_inner()),
            &mut self.plans,
            self.engine,
            self.eval_pool.as_ref(),
        )
    }

    /// Intern-pool hit/miss counters of the shared store.
    pub fn intern_stats(&self) -> PoolStats {
        self.db.pool_stats()
    }

    /// Compiled join plans reused from the cross-exchange plan cache.
    pub fn plan_cache_hits(&self) -> u64 {
        self.plans.hit_count()
    }

    /// Number of pool ids still referenced by live rows (the store's live
    /// vocabulary). The scan over every relation's interned rows is
    /// memoized against a cheap content stamp, so repeated reads on an
    /// unchanged store (a monitoring client polling `Stats`) cost
    /// O(relations), not O(rows).
    pub fn pool_live_values(&self) -> usize {
        let stamp = (
            self.db
                .relations()
                .map(orchestra_storage::Relation::version)
                .sum::<u64>(),
            self.db.relation_count(),
        );
        let mut memo = self.live_scan.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((cached_stamp, count)) = *memo {
            if cached_stamp == stamp {
                return count;
            }
        }
        let count = self.db.live_value_count();
        *memo = Some((stamp, count));
        count
    }

    /// The active value-pool compaction policy.
    pub fn compaction_policy(&self) -> CompactionPolicy {
        self.compaction
    }

    /// Replace the value-pool compaction policy.
    pub fn set_compaction_policy(&mut self, policy: CompactionPolicy) {
        self.compaction = policy;
    }

    /// Compaction passes run so far.
    pub fn compactions_run(&self) -> u64 {
        self.compactions_run
    }

    // ------------------------------------------------------------------
    // Value-pool compaction
    // ------------------------------------------------------------------

    /// Compact the value pool now, unconditionally: rebuild it from the
    /// values live rows still reference, re-stamp every relation's interned
    /// rows with the new dense ids, and drop the compiled join plans (their
    /// constant-interned ids would otherwise alias re-assigned ids — a
    /// silent wrong answer, not a crash). Every observable API — instances,
    /// certain answers, provenance, derivability, edit-log normalization —
    /// is unaffected: tuple ids, content hashes and secondary indexes key
    /// on content, which compaction does not change.
    ///
    /// After the pass, pool memory equals the live vocabulary (plus the
    /// rule constants the next evaluation re-interns). On a persistent
    /// CDSS, call [`Cdss::checkpoint`] — which runs this automatically
    /// under the [`CompactionPolicy`] — rather than compacting manually.
    pub fn compact(&mut self) -> PoolCompaction {
        let _span = orchestra_obs::span("compact", "core");
        let report = self.db.compact_pool();
        self.plans.invalidate_plans();
        self.compactions_run += 1;
        // Compaction restamps every rewritten relation (bumping its content
        // version), so this republish re-clones them: snapshot readers never
        // observe post-compaction ids through pre-compaction relations or
        // vice versa. Old views keep their pre-compaction clones and stay
        // self-consistent.
        self.publish_snapshot();
        report
    }

    /// Compact the value pool if the [`CompactionPolicy`] calls for it
    /// (pool big enough, dead ratio high enough). Returns what the pass
    /// did, or `None` when the policy declined. Small pools skip the live
    /// scan entirely, and a firing policy shares one scan between the
    /// ratio check and the pass itself.
    pub fn maybe_compact(&mut self) -> Option<PoolCompaction> {
        let report = self
            .db
            .compact_pool_if(self.compaction.min_pool_len, self.compaction.min_dead_ratio)?;
        self.plans.invalidate_plans();
        self.compactions_run += 1;
        self.publish_snapshot();
        Some(report)
    }

    /// Run a closure against the current provenance graph (tuple and mapping
    /// instantiation nodes), rebuilding it first if a bulk operation
    /// invalidated it.
    ///
    /// The graph lives behind a non-reentrant mutex: **do not call other
    /// provenance APIs of the same `Cdss` (`provenance_of`, `is_derivable`,
    /// or a nested `with_provenance_graph`) from inside the closure** — that
    /// would re-lock the mutex and deadlock. Extract what you need from the
    /// graph and return it instead.
    pub fn with_provenance_graph<R>(&self, f: impl FnOnce(&ProvenanceGraph) -> R) -> R {
        let mut cache = self.graph.lock().unwrap_or_else(|e| e.into_inner());
        f(cache.ensure(&self.system, &self.db))
    }

    /// The trust policy of a peer (trust-everything if unset).
    pub fn trust_policy(&self, peer: &str) -> TrustPolicy {
        self.policies.get(peer).cloned().unwrap_or_default()
    }

    /// Replace a peer's trust policy. Takes effect at the next update
    /// exchange or recomputation.
    pub fn set_trust_policy(&mut self, peer: impl Into<PeerId>, policy: TrustPolicy) -> Result<()> {
        let peer = peer.into();
        if !self.peers.contains_key(&peer) {
            return Err(CdssError::UnknownPeer(peer));
        }
        for m in policy
            .distrusted_mappings
            .iter()
            .chain(policy.conditions.keys())
        {
            if self.system.mapping(m).is_none() {
                return Err(CdssError::UnknownMapping(m.clone()));
            }
        }
        self.policies.insert(peer, policy);
        Ok(())
    }

    /// Size statistics of the whole auxiliary store (Figure 6).
    pub fn instance_stats(&self) -> DatabaseStats {
        self.db.stats()
    }

    /// Validate that a relation belongs to a peer and a tuple matches its
    /// arity.
    fn check_edit(&self, peer: &str, relation: &str, tuple: &Tuple) -> Result<()> {
        let p = self.peer(peer)?;
        let Some(schema) = p.relation(relation) else {
            return Err(CdssError::NotPeerRelation {
                peer: peer.to_string(),
                relation: relation.to_string(),
            });
        };
        if schema.arity() != tuple.arity() {
            return Err(CdssError::ArityMismatch {
                relation: relation.to_string(),
                expected: schema.arity(),
                actual: tuple.arity(),
            });
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Local editing and publishing (paper §2, §3.1)
    // ------------------------------------------------------------------

    /// Record a local insertion in the peer's edit log. Nothing propagates
    /// until the peer performs an update exchange.
    pub fn insert_local(&mut self, peer: &str, relation: &str, tuple: Tuple) -> Result<()> {
        self.check_edit(peer, relation, &tuple)?;
        self.pending
            .entry(peer.to_string())
            .or_default()
            .entry(relation.to_string())
            .or_insert_with(|| EditLog::new(relation))
            .push_insert(tuple);
        Ok(())
    }

    /// Record a local deletion in the peer's edit log. Deleting data the peer
    /// never inserted is a *curation rejection* of imported data (paper §2).
    pub fn delete_local(&mut self, peer: &str, relation: &str, tuple: Tuple) -> Result<()> {
        self.check_edit(peer, relation, &tuple)?;
        self.pending
            .entry(peer.to_string())
            .or_default()
            .entry(relation.to_string())
            .or_insert_with(|| EditLog::new(relation))
            .push_delete(tuple);
        Ok(())
    }

    /// Number of unpublished edit-log entries for a peer.
    pub fn pending_edit_count(&self, peer: &str) -> usize {
        self.pending
            .get(peer)
            .map(|logs| logs.values().map(EditLog::len).sum())
            .unwrap_or(0)
    }

    /// Normalise and clear the peer's pending edit logs, returning the net
    /// effect on its local-contributions and rejections tables. The changes
    /// are *not* yet applied to the store; `update_exchange` does that and
    /// propagates them.
    pub(crate) fn publish(&mut self, peer: &str) -> Result<(PublishReport, PublishedChanges)> {
        self.peer(peer)?;
        let mut report = PublishReport::default();
        let mut changes = PublishedChanges::default();

        let Some(logs) = self.pending.remove(peer) else {
            return Ok((report, changes));
        };

        for (relation, log) in logs {
            let rl_name = internal_name(&relation, InternalRole::LocalContributions);
            let prior = self.db.relation(&rl_name)?;
            let normalized = log.normalize_with(|t| prior.contains(t));

            if !normalized.contributions.is_empty() {
                report
                    .contributions_added
                    .insert(relation.clone(), normalized.contributions.len());
                changes
                    .contributions
                    .insert(relation.clone(), normalized.contributions);
            }
            if !normalized.retracted_contributions.is_empty() {
                report
                    .contributions_retracted
                    .insert(relation.clone(), normalized.retracted_contributions.len());
                changes
                    .retractions
                    .insert(relation.clone(), normalized.retracted_contributions);
            }
            if !normalized.rejections.is_empty() {
                report
                    .rejections_added
                    .insert(relation.clone(), normalized.rejections.len());
                changes
                    .rejections
                    .insert(relation.clone(), normalized.rejections);
            }
        }
        Ok((report, changes))
    }

    // ------------------------------------------------------------------
    // Queries and provenance (paper §2.1, §3.2)
    // ------------------------------------------------------------------

    /// Validate that `peer` owns `relation` and return the relation's
    /// curated output table `R_o`. The shared preamble of every read API.
    fn output_relation(&self, peer: &str, relation: &str) -> Result<&orchestra_storage::Relation> {
        let p = self.peer(peer)?;
        if !p.owns(relation) {
            return Err(CdssError::NotPeerRelation {
                peer: peer.to_string(),
                relation: relation.to_string(),
            });
        }
        let out = internal_name(relation, InternalRole::Output);
        Ok(self.db.relation(&out)?)
    }

    /// The full local instance of one of a peer's relations (the contents of
    /// its curated output table `R_o`), including tuples with labeled nulls.
    pub fn local_instance(&self, peer: &str, relation: &str) -> Result<Vec<Tuple>> {
        Ok(self.output_relation(peer, relation)?.sorted_tuples())
    }

    /// The certain answers over one of a peer's relations: the local instance
    /// with tuples containing labeled nulls discarded (paper §2.1).
    pub fn certain_answers(&self, peer: &str, relation: &str) -> Result<Vec<Tuple>> {
        Ok(self.output_relation(peer, relation)?.certain_tuples())
    }

    /// Borrowed iterator over the local instance of one of a peer's
    /// relations, in arbitrary order. Unlike [`Cdss::local_instance`] this
    /// copies nothing, so read-heavy callers (the network query handlers,
    /// statistics, containment checks) can scan a relation without cloning
    /// it; collect and sort if a deterministic listing is needed.
    pub fn local_instance_iter(
        &self,
        peer: &str,
        relation: &str,
    ) -> Result<impl Iterator<Item = &Tuple>> {
        Ok(self.output_relation(peer, relation)?.iter())
    }

    /// Borrowed iterator over the certain answers of one of a peer's
    /// relations (tuples without labeled nulls), in arbitrary order. The
    /// zero-copy counterpart of [`Cdss::certain_answers`].
    pub fn certain_answers_iter(
        &self,
        peer: &str,
        relation: &str,
    ) -> Result<impl Iterator<Item = &Tuple>> {
        Ok(self
            .local_instance_iter(peer, relation)?
            .filter(|t| !t.has_labeled_null()))
    }

    /// Number of tuples in the local instance of one of a peer's relations,
    /// without materialising it.
    pub fn local_instance_len(&self, peer: &str, relation: &str) -> Result<usize> {
        Ok(self.output_relation(peer, relation)?.len())
    }

    /// Point query over the local instance: tuples of `relation` whose
    /// columns equal the `Some` entries of `binding`, sorted. The instance
    /// is maintained incrementally by update exchange, so this is a
    /// filtered scan of the curated output table — only matching tuples
    /// are cloned, never the whole instance.
    pub fn query_local_bound(
        &self,
        peer: &str,
        relation: &str,
        binding: &[Option<Value>],
    ) -> Result<Vec<Tuple>> {
        bound_filtered(
            relation,
            self.output_relation(peer, relation)?,
            binding,
            false,
        )
    }

    /// Point query over the certain answers: [`Cdss::query_local_bound`]
    /// with tuples containing labeled nulls discarded (paper §2.1).
    pub fn query_certain_bound(
        &self,
        peer: &str,
        relation: &str,
        binding: &[Option<Value>],
    ) -> Result<Vec<Tuple>> {
        bound_filtered(
            relation,
            self.output_relation(peer, relation)?,
            binding,
            true,
        )
    }

    /// Evaluate an ad-hoc conjunctive query whose body refers to *logical*
    /// relation names (they are translated to the peers' output tables).
    /// Returns all answers, including those containing labeled nulls.
    pub fn query_rule(&mut self, rule: &Rule) -> Result<Vec<Tuple>> {
        let translated = Rule::new(
            rule.head.clone(),
            rule.body
                .iter()
                .map(|lit| {
                    let mut lit = lit.clone();
                    if self.relation_owner.contains_key(lit.relation()) {
                        lit.atom.relation = internal_name(&lit.atom.relation, InternalRole::Output);
                    }
                    lit
                })
                .collect(),
        );
        let mut eval = Evaluator::new(self.engine);
        let mut out = eval.evaluate_rule(&translated, &mut self.db, None, None)?;
        out.sort();
        out.dedup();
        Ok(out)
    }

    /// Evaluate an ad-hoc query and return only certain answers (tuples
    /// without labeled nulls), as in Example 3.
    pub fn query_certain(&mut self, rule: &Rule) -> Result<Vec<Tuple>> {
        Ok(self
            .query_rule(rule)?
            .into_iter()
            .filter(|t| !t.has_labeled_null())
            .collect())
    }

    /// The provenance expression of a tuple of a logical relation
    /// (Example 6). The tuple is looked up in the relation's input table
    /// (data arriving via mappings) and falls back to the output table.
    pub fn provenance_of(&self, relation: &str, tuple: &Tuple) -> ProvenanceExpr {
        self.with_provenance_graph(|graph| {
            let input = internal_name(relation, InternalRole::Input);
            let expr = graph.expression_for(&input, tuple);
            if !expr.is_zero() {
                return expr;
            }
            let output = internal_name(relation, InternalRole::Output);
            graph.expression_for(&output, tuple)
        })
    }

    /// The one-hop derivation neighbors of a tuple of a logical relation,
    /// sorted and deduplicated — the enumeration behind the paginated
    /// provenance cursor. The tuple is looked up in the relation's input
    /// table first, falling back to the output table, mirroring
    /// [`Cdss::provenance_of`].
    pub fn provenance_neighbors(
        &self,
        relation: &str,
        tuple: &Tuple,
        direction: PageDirection,
    ) -> Vec<ProvenanceNeighbor> {
        self.with_provenance_graph(|graph| {
            let input = internal_name(relation, InternalRole::Input);
            let out = graph.neighbors(&input, tuple, direction);
            if !out.is_empty() {
                return out;
            }
            let output = internal_name(relation, InternalRole::Output);
            graph.neighbors(&output, tuple, direction)
        })
    }

    /// Is a tuple of a logical relation's output table still derivable from
    /// the base data currently present in the local-contribution tables?
    pub fn is_derivable(&self, relation: &str, tuple: &Tuple) -> bool {
        let output = internal_name(relation, InternalRole::Output);
        let db = &self.db;
        self.with_provenance_graph(|graph| {
            graph.derivable(&output, tuple, |tok: &ProvenanceToken| {
                db.relation(&tok.relation)
                    .map(|r| r.contains(&tok.tuple))
                    .unwrap_or(false)
            })
        })
    }

    /// Total number of tuples in all peers' curated output tables.
    pub fn total_output_tuples(&self) -> usize {
        self.relation_owner
            .keys()
            .filter_map(|r| {
                self.db
                    .relation(&internal_name(r, InternalRole::Output))
                    .ok()
                    .map(|rel| rel.len())
            })
            .sum()
    }
}

// The service layer (`orchestra-net`) shares one `Cdss` across server
// threads behind an `RwLock`; keep that property checked at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Cdss>()
};

// ----------------------------------------------------------------------
// Trust filtering and provenance graph maintenance helpers. These are free
// functions over individual `Cdss` fields so that callers can split borrows
// (mutable database access alongside immutable mapping/policy access).
// ----------------------------------------------------------------------

/// The split borrows handed to the evaluation strategies: immutable mapping
/// system, trust policies and relation ownership alongside mutable database,
/// provenance-graph cache and plan cache, plus the engine selection.
pub(crate) type EvalParts<'a> = (
    &'a MappingSystem,
    &'a BTreeMap<PeerId, TrustPolicy>,
    &'a BTreeMap<String, PeerId>,
    &'a mut Database,
    &'a mut GraphCache,
    &'a mut PlanCache,
    EngineKind,
    Option<&'a orchestra_pool::Pool>,
);

/// An [`Evaluator`] for the given backend, on the explicitly configured
/// pool when one is set and the evaluator default otherwise.
pub(crate) fn make_evaluator(engine: EngineKind, pool: Option<&orchestra_pool::Pool>) -> Evaluator {
    match pool {
        Some(p) => Evaluator::with_pool(engine, p.clone()),
        None => Evaluator::new(engine),
    }
}

/// The provenance graph plus deferred-maintenance state.
///
/// Bulk operations (full recomputation, deletion propagation) used to pay an
/// O(instance) graph rebuild inline on every call, and every insertion
/// propagation paid its graph extension inline. Both are now deferred out
/// of the exchange path: bulk operations [`GraphCache::invalidate`] (one
/// rebuild on the next read), and insertion batches queue up and are folded
/// in incrementally when the graph is next read. Update-exchange heavy
/// workloads that rarely ask for provenance barely pay for the graph at
/// all; provenance-heavy workloads pay exactly what they did before, once.
#[derive(Debug, Default)]
pub(crate) struct GraphCache {
    graph: ProvenanceGraph,
    dirty: bool,
    /// Insertion batches propagated since the graph was last read, in
    /// order. Drained by [`GraphCache::ensure`]; cleared by a rebuild.
    pending: Vec<std::collections::HashMap<String, Vec<Tuple>>>,
    /// Total tuples across `pending`, for the queue bound.
    pending_tuples: usize,
}

impl GraphCache {
    /// Above this many queued tuples the cache stops accumulating batches
    /// and falls back to full invalidation (see
    /// [`GraphCache::extend_with_insertions`]).
    const MAX_PENDING_TUPLES: usize = 250_000;
    /// Bring the graph up to date (full rebuild if stale, otherwise fold in
    /// any queued insertion batches), then hand it out.
    pub fn ensure(&mut self, system: &MappingSystem, db: &Database) -> &ProvenanceGraph {
        if self.dirty {
            rebuild_graph(system, db, &mut self.graph);
            self.dirty = false;
            self.pending.clear();
            self.pending_tuples = 0;
        } else {
            for batch in self.pending.drain(..) {
                extend_graph_with_insertions(system, db, &mut self.graph, &batch);
            }
            self.pending_tuples = 0;
        }
        &self.graph
    }

    /// Mark the graph stale; the next [`GraphCache::ensure`] rebuilds it.
    pub fn invalidate(&mut self) {
        self.dirty = true;
        self.pending.clear();
        self.pending_tuples = 0;
    }

    /// The graph as last ensured. Callers must have called
    /// [`GraphCache::ensure`] on this store state first.
    pub fn view(&self) -> &ProvenanceGraph {
        debug_assert!(
            !self.dirty && self.pending.is_empty(),
            "view() on a stale graph cache"
        );
        &self.graph
    }

    /// Queue freshly propagated insertions for incremental folding on the
    /// next read. A stale graph stays stale — it will be rebuilt from the
    /// store (which already contains the insertions) on next use.
    ///
    /// The queue is bounded: once more than [`GraphCache::MAX_PENDING_TUPLES`]
    /// tuples are queued, the cache collapses to a full invalidation. The
    /// store already holds every queued tuple, so dropping the queue loses
    /// nothing — it just trades the incremental fold for one rebuild — and
    /// an insert-only workload that never reads provenance cannot grow the
    /// queue without limit.
    pub fn extend_with_insertions(
        &mut self,
        new_tuples: std::collections::HashMap<String, Vec<Tuple>>,
    ) {
        if self.dirty {
            return;
        }
        self.pending_tuples += new_tuples.values().map(Vec::len).sum::<usize>();
        self.pending.push(new_tuples);
        if self.pending_tuples > Self::MAX_PENDING_TUPLES {
            self.invalidate();
        }
    }
}

/// Map an internal input-table name (`B_i`) back to its logical relation
/// (`B`), if it has the input suffix.
pub(crate) fn logical_of_input(relation: &str) -> Option<&str> {
    relation.strip_suffix("_i")
}

/// True when every peer's policy trusts everything unconditionally — the
/// common case, in which the evaluator can skip per-tuple filtering
/// entirely.
pub(crate) fn all_trust_all(policies: &BTreeMap<PeerId, TrustPolicy>) -> bool {
    policies.values().all(TrustPolicy::is_trust_all)
}

/// Build the derivation filter enforcing trust conditions during evaluation
/// (paper §3.3 and §4.2): a provenance row is accepted only if every target
/// tuple it derives is accepted by the owning peer's policy for that mapping.
pub(crate) fn trust_filter<'a>(
    system: &'a MappingSystem,
    policies: &'a BTreeMap<PeerId, TrustPolicy>,
    relation_owner: &'a BTreeMap<String, PeerId>,
) -> impl Fn(&str, &Tuple) -> bool + Send + Sync + 'a {
    move |relation: &str, row: &Tuple| {
        let Some((mapping, table_idx)) = system.mapping_for_provenance_relation(relation) else {
            // Not a provenance relation: no trust condition applies here.
            return true;
        };
        for (target_rel, target_tuple) in mapping.targets_iter(table_idx, row) {
            let Some(logical) = logical_of_input(target_rel) else {
                continue;
            };
            let Some(owner) = relation_owner.get(logical) else {
                continue;
            };
            if let Some(policy) = policies.get(owner) {
                if !policy.accepts(&mapping.name, &target_tuple) {
                    return false;
                }
            }
        }
        true
    }
}

/// The name of the provenance-graph mapping node family recording the
/// internal rule `R_o :- R_i, ¬R_r` for logical relation `R`.
pub(crate) fn import_edge(relation: &str) -> String {
    format!("import:{relation}")
}

/// The name of the provenance-graph mapping node family recording the
/// internal rule `R_o :- R_l` for logical relation `R`.
pub(crate) fn local_edge(relation: &str) -> String {
    format!("local:{relation}")
}

/// Resolve a reconstructed `(relation, tuple)` pair to a graph node through
/// the stored-tuple fast index when the tuple is present in its relation
/// (the common case: provenance rows only mention stored tuples), falling
/// back to the value-keyed path otherwise.
fn ensure_node(
    graph: &mut ProvenanceGraph,
    rel: Option<&orchestra_storage::Relation>,
    name: &str,
    tuple: &Tuple,
) -> orchestra_provenance::TupleNodeId {
    match rel.and_then(|r| r.id_of(tuple)) {
        Some(tid) => graph.ensure_stored_tuple(name, tid, tuple),
        None => graph.ensure_tuple(name, tuple),
    }
}

/// Rebuild the provenance graph from scratch from the current contents of
/// the local-contribution tables, the provenance relations, and the internal
/// input/output tables. Nodes are registered through the graph's
/// `(RelId, TupleId)` stored-tuple index — tuple ids come for free from the
/// relations' id iterators, so maintenance probes integers, not payloads.
/// Filtered scan shared by the live and snapshot bound-query paths:
/// tuples of `rel` whose columns equal the `Some` entries of `binding`
/// (with labeled-null tuples dropped when `certain`), sorted. Only
/// matching tuples are cloned — a point query never materialises the
/// instance.
pub(crate) fn bound_filtered(
    relation: &str,
    rel: &orchestra_storage::Relation,
    binding: &[Option<Value>],
    certain: bool,
) -> Result<Vec<Tuple>> {
    if binding.len() != rel.schema().arity() {
        return Err(CdssError::ArityMismatch {
            relation: relation.to_string(),
            expected: rel.schema().arity(),
            actual: binding.len(),
        });
    }
    let mut out: Vec<Tuple> = rel
        .iter()
        .filter(|t| !(certain && t.has_labeled_null()))
        .filter(|t| {
            binding
                .iter()
                .enumerate()
                .all(|(i, b)| b.as_ref().is_none_or(|v| &t[i] == v))
        })
        .cloned()
        .collect();
    out.sort();
    Ok(out)
}

pub(crate) fn rebuild_graph(
    system: &MappingSystem,
    db: &impl RelationSource,
    graph: &mut ProvenanceGraph,
) {
    *graph = ProvenanceGraph::new();

    // Base data: local contributions carry their own provenance tokens.
    for logical in system.logical_relations() {
        let rl = internal_name(&logical, InternalRole::LocalContributions);
        if let Some(rel) = db.lookup(&rl) {
            for (tid, t) in rel.iter_ids() {
                graph.mark_base_stored(&rl, tid, t);
            }
        }
    }

    // Mapping instantiations from the stored provenance rows. Source and
    // target relations are fixed per mapping, so they are resolved once per
    // table; the node scratch vectors are reused across rows.
    for compiled in &system.compiled {
        let src_rels: Vec<_> = compiled
            .sources
            .iter()
            .map(|t| db.lookup(&t.relation))
            .collect();
        for (table_idx, table) in compiled.provenance.iter().enumerate() {
            let Some(rel) = db.lookup(&table.relation) else {
                continue;
            };
            let tgt_rels: Vec<_> = table
                .target_indexes
                .iter()
                .map(|&ti| db.lookup(&compiled.targets[ti].relation))
                .collect();
            for row in rel.iter() {
                let src_nodes: Vec<_> = compiled
                    .sources_iter(row)
                    .zip(&src_rels)
                    .map(|((name, t), rel)| ensure_node(graph, *rel, name, &t))
                    .collect();
                let tgt_nodes: Vec<_> = compiled
                    .targets_iter(table_idx, row)
                    .zip(&tgt_rels)
                    .map(|((name, t), rel)| ensure_node(graph, *rel, name, &t))
                    .collect();
                graph.add_derivation_nodes(compiled.name.clone(), src_nodes, tgt_nodes);
            }
        }
    }

    // Internal edges: R_o tuples derive from R_l (local) and R_i (import).
    for logical in system.logical_relations() {
        let ro = internal_name(&logical, InternalRole::Output);
        let rl = internal_name(&logical, InternalRole::LocalContributions);
        let ri = internal_name(&logical, InternalRole::Input);
        let Some(out_rel) = db.lookup(&ro) else {
            continue;
        };
        let local = local_edge(&logical);
        let import = import_edge(&logical);
        let rl_rel = db.lookup(&rl);
        let ri_rel = db.lookup(&ri);
        for (tid, t) in out_rel.iter_ids() {
            if let Some(src_tid) = rl_rel.and_then(|r| r.id_of(t)) {
                let src = graph.ensure_stored_tuple(&rl, src_tid, t);
                let tgt = graph.ensure_stored_tuple(&ro, tid, t);
                graph.add_derivation_nodes(local.clone(), vec![src], vec![tgt]);
            }
            if let Some(src_tid) = ri_rel.and_then(|r| r.id_of(t)) {
                let src = graph.ensure_stored_tuple(&ri, src_tid, t);
                let tgt = graph.ensure_stored_tuple(&ro, tid, t);
                graph.add_derivation_nodes(import.clone(), vec![src], vec![tgt]);
            }
        }
    }
}

/// Incrementally extend the provenance graph after insertion propagation:
/// `new_tuples` maps (internal) relation names to the tuples newly inserted
/// by the propagation.
pub(crate) fn extend_graph_with_insertions(
    system: &MappingSystem,
    db: &Database,
    graph: &mut ProvenanceGraph,
    new_tuples: &std::collections::HashMap<String, Vec<Tuple>>,
) {
    for (relation, tuples) in new_tuples {
        let own_rel = db.relation(relation).ok();
        // New base data. If the corresponding output tuple already exists
        // (it was previously derivable only via imports), the local edge
        // must be added now.
        if let Some(logical) = relation.strip_suffix("_l") {
            let ro = internal_name(logical, InternalRole::Output);
            let ro_rel = db.relation(&ro).ok();
            for t in tuples {
                match own_rel.and_then(|r| r.id_of(t)) {
                    Some(tid) => graph.mark_base_stored(relation, tid, t),
                    None => graph.mark_base(relation, t),
                };
                if let Some(out_tid) = ro_rel.and_then(|r| r.id_of(t)) {
                    let src = ensure_node(graph, own_rel, relation, t);
                    let tgt = graph.ensure_stored_tuple(&ro, out_tid, t);
                    graph.add_derivation_nodes(local_edge(logical), vec![src], vec![tgt]);
                }
            }
            continue;
        }
        // New provenance rows become mapping nodes.
        if let Some((compiled, table_idx)) = system.mapping_for_provenance_relation(relation) {
            let src_rels: Vec<_> = compiled
                .sources
                .iter()
                .map(|t| db.relation(&t.relation).ok())
                .collect();
            let tgt_rels: Vec<_> = compiled.provenance[table_idx]
                .target_indexes
                .iter()
                .map(|&ti| db.relation(&compiled.targets[ti].relation).ok())
                .collect();
            for row in tuples {
                let src_nodes: Vec<_> = compiled
                    .sources_iter(row)
                    .zip(&src_rels)
                    .map(|((name, t), rel)| ensure_node(graph, *rel, name, &t))
                    .collect();
                let tgt_nodes: Vec<_> = compiled
                    .targets_iter(table_idx, row)
                    .zip(&tgt_rels)
                    .map(|((name, t), rel)| ensure_node(graph, *rel, name, &t))
                    .collect();
                graph.add_derivation_nodes(compiled.name.clone(), src_nodes, tgt_nodes);
            }
            continue;
        }
        // New output tuples gain their internal edges.
        if let Some(logical) = relation.strip_suffix("_o") {
            let rl = internal_name(logical, InternalRole::LocalContributions);
            let ri = internal_name(logical, InternalRole::Input);
            let rl_rel = db.relation(&rl).ok();
            let ri_rel = db.relation(&ri).ok();
            for t in tuples {
                if let Some(src_tid) = rl_rel.and_then(|r| r.id_of(t)) {
                    let src = graph.ensure_stored_tuple(&rl, src_tid, t);
                    let tgt = ensure_node(graph, own_rel, relation, t);
                    graph.add_derivation_nodes(local_edge(logical), vec![src], vec![tgt]);
                }
                if let Some(src_tid) = ri_rel.and_then(|r| r.id_of(t)) {
                    let src = graph.ensure_stored_tuple(&ri, src_tid, t);
                    let tgt = ensure_node(graph, own_rel, relation, t);
                    graph.add_derivation_nodes(import_edge(logical), vec![src], vec![tgt]);
                }
            }
            continue;
        }
        // New input tuples: if the matching output tuple already exists (it
        // was previously derivable only locally), add the import edge.
        if let Some(logical) = logical_of_input(relation) {
            let ro = internal_name(logical, InternalRole::Output);
            let ro_rel = db.relation(&ro).ok();
            for t in tuples {
                if let Some(out_tid) = ro_rel.and_then(|r| r.id_of(t)) {
                    let src = ensure_node(graph, own_rel, relation, t);
                    let tgt = graph.ensure_stored_tuple(&ro, out_tid, t);
                    graph.add_derivation_nodes(import_edge(logical), vec![src], vec![tgt]);
                }
            }
        }
    }
}

#[cfg(test)]
mod compaction_tests {
    use super::*;
    use crate::builder::CdssBuilder;
    use orchestra_storage::tuple::int_tuple;
    use orchestra_storage::RelationSchema;

    fn example() -> Cdss {
        CdssBuilder::new()
            .add_peer(
                "PGUS",
                vec![RelationSchema::new("G", &["id", "can", "nam"])],
            )
            .add_peer("PBioSQL", vec![RelationSchema::new("B", &["id", "nam"])])
            .add_peer("PuBio", vec![RelationSchema::new("U", &["nam", "can"])])
            .add_mapping_str("m1", "G(i, c, n) -> B(i, n)")
            .add_mapping_str("m2", "G(i, c, n) -> U(n, c)")
            .add_mapping_str("m3", "B(i, n) -> U(n, c)")
            .add_mapping_str("m4", "B(i, c), U(n, c) -> B(i, n)")
            .build()
            .unwrap()
    }

    /// Insert a distinct G row and delete the previous round's, exchanging
    /// each time — the churn regime that grows the pool without bound.
    fn churn(cdss: &mut Cdss, rounds: i64) {
        for r in 0..rounds {
            cdss.insert_local("PGUS", "G", int_tuple(&[r, 100_000 + r, 200_000 + r]))
                .unwrap();
            if r > 0 {
                cdss.delete_local(
                    "PGUS",
                    "G",
                    int_tuple(&[r - 1, 100_000 + r - 1, 200_000 + r - 1]),
                )
                .unwrap();
            }
            cdss.update_exchange("PGUS").unwrap();
        }
    }

    #[test]
    fn compact_bounds_churned_pool_and_preserves_observables() {
        let mut cdss = example();
        let mut twin = example();
        churn(&mut cdss, 40);
        churn(&mut twin, 40);

        let pool_before = cdss.intern_stats().distinct as usize;
        let live = cdss.pool_live_values();
        assert!(
            pool_before > 4 * live,
            "churn must leave mostly-dead pool ({pool_before} pooled, {live} live)"
        );

        let report = cdss.compact();
        assert_eq!(report.before, pool_before);
        assert_eq!(report.after, live);
        assert_eq!(cdss.compactions_run(), 1);
        assert_eq!(cdss.intern_stats().compactions, 1);

        // Every observable agrees with the never-compacted twin.
        assert_eq!(cdss.database(), twin.database());
        for (peer, rel) in [("PGUS", "G"), ("PBioSQL", "B"), ("PuBio", "U")] {
            assert_eq!(
                cdss.local_instance(peer, rel).unwrap(),
                twin.local_instance(peer, rel).unwrap()
            );
            for t in cdss.local_instance(peer, rel).unwrap() {
                assert_eq!(
                    cdss.provenance_of(rel, &t).canonical().to_string(),
                    twin.provenance_of(rel, &t).canonical().to_string()
                );
                assert_eq!(cdss.is_derivable(rel, &t), twin.is_derivable(rel, &t));
            }
        }

        // Exchanges after compaction (stale plans would mis-evaluate if the
        // cache survived) still track the twin exactly.
        for c in [&mut cdss, &mut twin] {
            c.insert_local("PBioSQL", "B", int_tuple(&[39, 200_039]))
                .unwrap();
            c.insert_local("PGUS", "G", int_tuple(&[7, 7, 7])).unwrap();
            c.update_exchange_all().unwrap();
        }
        assert_eq!(cdss.database(), twin.database());
    }

    #[test]
    fn maybe_compact_respects_the_policy() {
        let mut cdss = example();
        churn(&mut cdss, 20);
        // Defaults: pool far below min_pool_len → declined without a scan.
        assert_eq!(cdss.maybe_compact(), None);
        assert_eq!(cdss.compactions_run(), 0);

        // A dead-heavy pool above the (lowered) floor compacts.
        cdss.set_compaction_policy(CompactionPolicy {
            min_pool_len: 8,
            min_dead_ratio: 0.5,
        });
        let report = cdss.maybe_compact().expect("policy fires");
        assert!(report.reclaimed() > 0);
        assert_eq!(cdss.compactions_run(), 1);

        // Right after compacting nothing is dead → declined again.
        assert_eq!(cdss.maybe_compact(), None);

        // `never()` refuses even a fully dead pool.
        churn(&mut cdss, 10);
        cdss.set_compaction_policy(CompactionPolicy::never());
        assert_eq!(cdss.maybe_compact(), None);
    }

    #[test]
    fn checkpoint_compacts_under_policy_and_recovers_identically() {
        let dir = orchestra_persist::testutil::TempDir::new("core-compact-ckpt");
        let mut cdss = CdssBuilder::new()
            .add_peer(
                "PGUS",
                vec![RelationSchema::new("G", &["id", "can", "nam"])],
            )
            .add_peer("PBioSQL", vec![RelationSchema::new("B", &["id", "nam"])])
            .add_mapping_str("m1", "G(i, c, n) -> B(i, n)")
            .compaction_policy(CompactionPolicy {
                min_pool_len: 8,
                min_dead_ratio: 0.3,
            })
            .with_persistence(dir.path())
            .build()
            .unwrap();
        churn(&mut cdss, 25);
        let live = cdss.pool_live_values();
        cdss.checkpoint().unwrap();
        assert_eq!(cdss.compactions_run(), 1, "checkpoint triggered the pass");
        assert_eq!(cdss.intern_stats().distinct as usize, live);
        let before_db = cdss.database().clone();
        drop(cdss);

        let (recovered, report) = Cdss::open_or_recover(dir.path()).unwrap();
        assert_eq!(report.replayed_epochs, 0);
        assert_eq!(recovered.database(), &before_db);
    }
}
