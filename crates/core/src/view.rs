//! Snapshot-isolated read views of a [`crate::Cdss`].
//!
//! A [`SnapshotView`] pairs one immutable
//! [`DbSnapshot`](orchestra_snapshot::DbSnapshot) — published at a commit
//! point (exchange, bulk apply, recomputation, compaction, checkpoint) —
//! with the static metadata needed to answer the read APIs with the same
//! semantics and error vocabulary as the live `Cdss`: peer schemas for
//! request validation, and the mapping system for lazily rebuilding a
//! provenance graph over the snapshot.
//!
//! Readers obtain views through a [`SnapshotReader`], a cloneable handle
//! over a lock-free swap cell: fetching the latest view never touches a
//! lock, so queries proceed at full speed while an update exchange holds
//! the writer exclusively. Every view is a *whole-epoch* instance —
//! publishes happen only after an exchange commits, never mid-propagation
//! — so a reader sees the pre-exchange or post-exchange database, never a
//! mix.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use orchestra_mappings::MappingSystem;
use orchestra_provenance::{
    PageDirection, ProvenanceExpr, ProvenanceGraph, ProvenanceNeighbor, ProvenanceToken,
};
use orchestra_snapshot::{ArcCell, DbSnapshot, SnapshotStore};
use orchestra_storage::schema::{internal_name, InternalRole};
use orchestra_storage::{Database, PoolStats, Relation, StorageError, Tuple, Value};

use crate::cdss::rebuild_graph;
use crate::error::CdssError;
use crate::peer::{Peer, PeerId};
use crate::Result;

/// The static (post-build immutable) CDSS metadata every snapshot view
/// shares: peer schemas, relation ownership, and the compiled mapping
/// system. Built once; views hold it by `Arc`.
#[derive(Debug)]
pub(crate) struct SnapshotMeta {
    pub(crate) system: Arc<MappingSystem>,
    pub(crate) peers: BTreeMap<PeerId, Peer>,
    pub(crate) relation_owner: BTreeMap<String, PeerId>,
}

/// An immutable, whole-epoch read view of a CDSS.
///
/// Offers the same read APIs as [`crate::Cdss`] — instances, certain
/// answers, provenance, derivability, statistics — evaluated entirely
/// against one published snapshot. Obtained from [`crate::Cdss::snapshot`]
/// or a [`SnapshotReader`]; cheap to hold (relations are structurally
/// shared with neighbouring epochs) and valid indefinitely, even across
/// later pool compactions.
#[derive(Debug)]
pub struct SnapshotView {
    snap: Arc<DbSnapshot>,
    meta: Arc<SnapshotMeta>,
    published: u64,
    durable_epoch: u64,
    plan_cache_hits: u64,
    compactions_run: u64,
    /// Provenance graph over the snapshot, rebuilt lazily on first
    /// provenance read (mirrors the live `Cdss`'s lazy graph cache).
    graph: OnceLock<ProvenanceGraph>,
}

impl SnapshotView {
    /// The snapshot epoch this view was published at: 0 only for the
    /// transient pre-initialisation view, then incremented per
    /// content-changing publish.
    pub fn epoch(&self) -> u64 {
        self.snap.epoch()
    }

    /// Total content-changing snapshot publishes by the owning CDSS as of
    /// this view (no-op publishes reuse the previous snapshot and do not
    /// count).
    pub fn snapshots_published(&self) -> u64 {
        self.published
    }

    /// Number of epochs durably published by the underlying CDSS as of
    /// this view (0 when not persistent) — [`crate::Cdss::current_epoch`].
    pub fn durable_epoch(&self) -> u64 {
        self.durable_epoch
    }

    /// Compiled join plans reused from the plan cache, as of this view.
    pub fn plan_cache_hits(&self) -> u64 {
        self.plan_cache_hits
    }

    /// Pool compaction passes run, as of this view.
    pub fn compactions_run(&self) -> u64 {
        self.compactions_run
    }

    /// The identifiers of all peers, sorted.
    pub fn peer_ids(&self) -> Vec<PeerId> {
        self.meta.peers.keys().cloned().collect()
    }

    /// Look up a peer.
    pub fn peer(&self, id: &str) -> Result<&Peer> {
        self.meta
            .peers
            .get(id)
            .ok_or_else(|| CdssError::UnknownPeer(id.to_string()))
    }

    /// Total number of tuples across every captured internal relation
    /// (the snapshot-side analogue of `instance_stats().total_tuples`).
    pub fn total_tuples(&self) -> usize {
        self.snap.total_tuples()
    }

    /// Total number of tuples in all peers' curated output tables.
    pub fn total_output_tuples(&self) -> usize {
        self.meta
            .relation_owner
            .keys()
            .filter_map(|r| {
                self.snap
                    .lookup(&internal_name(r, InternalRole::Output))
                    .map(Relation::len)
            })
            .sum()
    }

    /// Intern-pool counters as of this view's publish.
    pub fn intern_stats(&self) -> PoolStats {
        self.snap.pool_stats()
    }

    /// Pool ids referenced by live rows of this snapshot. Computed at most
    /// once per snapshot, on first use.
    pub fn pool_live_values(&self) -> usize {
        self.snap.live_value_count()
    }

    /// Validate that `peer` owns `relation` and return the relation's
    /// curated output table `R_o` in this snapshot — the same preamble
    /// (and error vocabulary) as the live read APIs.
    fn output_relation(&self, peer: &str, relation: &str) -> Result<&Relation> {
        let p = self.peer(peer)?;
        if !p.owns(relation) {
            return Err(CdssError::NotPeerRelation {
                peer: peer.to_string(),
                relation: relation.to_string(),
            });
        }
        let out = internal_name(relation, InternalRole::Output);
        self.snap
            .lookup(&out)
            .ok_or_else(|| CdssError::from(StorageError::UnknownRelation(out)))
    }

    /// The full local instance of one of a peer's relations at this epoch,
    /// sorted — [`crate::Cdss::local_instance`] against the snapshot.
    pub fn local_instance(&self, peer: &str, relation: &str) -> Result<Vec<Tuple>> {
        Ok(self.output_relation(peer, relation)?.sorted_tuples())
    }

    /// The certain answers (tuples without labeled nulls) at this epoch,
    /// sorted — [`crate::Cdss::certain_answers`] against the snapshot.
    pub fn certain_answers(&self, peer: &str, relation: &str) -> Result<Vec<Tuple>> {
        Ok(self.output_relation(peer, relation)?.certain_tuples())
    }

    /// Borrowed iterator over the local instance at this epoch, in
    /// arbitrary order.
    pub fn local_instance_iter(
        &self,
        peer: &str,
        relation: &str,
    ) -> Result<impl Iterator<Item = &Tuple>> {
        Ok(self.output_relation(peer, relation)?.iter())
    }

    /// Borrowed iterator over the certain answers at this epoch, in
    /// arbitrary order.
    pub fn certain_answers_iter(
        &self,
        peer: &str,
        relation: &str,
    ) -> Result<impl Iterator<Item = &Tuple>> {
        Ok(self
            .local_instance_iter(peer, relation)?
            .filter(|t| !t.has_labeled_null()))
    }

    /// Number of tuples in the local instance at this epoch.
    pub fn local_instance_len(&self, peer: &str, relation: &str) -> Result<usize> {
        Ok(self.output_relation(peer, relation)?.len())
    }

    /// Point query over the local instance at this epoch —
    /// [`crate::Cdss::query_local_bound`] against the snapshot. Only
    /// matching tuples are cloned, never the whole instance.
    pub fn query_local_bound(
        &self,
        peer: &str,
        relation: &str,
        binding: &[Option<Value>],
    ) -> Result<Vec<Tuple>> {
        crate::cdss::bound_filtered(
            relation,
            self.output_relation(peer, relation)?,
            binding,
            false,
        )
    }

    /// Point query over the certain answers at this epoch —
    /// [`crate::Cdss::query_certain_bound`] against the snapshot.
    pub fn query_certain_bound(
        &self,
        peer: &str,
        relation: &str,
        binding: &[Option<Value>],
    ) -> Result<Vec<Tuple>> {
        crate::cdss::bound_filtered(
            relation,
            self.output_relation(peer, relation)?,
            binding,
            true,
        )
    }

    fn graph(&self) -> &ProvenanceGraph {
        self.graph.get_or_init(|| {
            let mut g = ProvenanceGraph::new();
            rebuild_graph(&self.meta.system, self.snap.as_ref(), &mut g);
            g
        })
    }

    /// The provenance expression of a tuple of a logical relation at this
    /// epoch — [`crate::Cdss::provenance_of`] against the snapshot.
    pub fn provenance_of(&self, relation: &str, tuple: &Tuple) -> ProvenanceExpr {
        let graph = self.graph();
        let input = internal_name(relation, InternalRole::Input);
        let expr = graph.expression_for(&input, tuple);
        if !expr.is_zero() {
            return expr;
        }
        let output = internal_name(relation, InternalRole::Output);
        graph.expression_for(&output, tuple)
    }

    /// The one-hop derivation neighbors of a tuple at this epoch —
    /// [`crate::Cdss::provenance_neighbors`] against the snapshot.
    pub fn provenance_neighbors(
        &self,
        relation: &str,
        tuple: &Tuple,
        direction: PageDirection,
    ) -> Vec<ProvenanceNeighbor> {
        let graph = self.graph();
        let input = internal_name(relation, InternalRole::Input);
        let out = graph.neighbors(&input, tuple, direction);
        if !out.is_empty() {
            return out;
        }
        let output = internal_name(relation, InternalRole::Output);
        graph.neighbors(&output, tuple, direction)
    }

    /// Is a tuple of a logical relation's output table derivable from the
    /// base data of this epoch — [`crate::Cdss::is_derivable`] against the
    /// snapshot.
    pub fn is_derivable(&self, relation: &str, tuple: &Tuple) -> bool {
        let output = internal_name(relation, InternalRole::Output);
        let snap = &self.snap;
        self.graph()
            .derivable(&output, tuple, |tok: &ProvenanceToken| {
                snap.lookup(&tok.relation)
                    .map(|r| r.contains(&tok.tuple))
                    .unwrap_or(false)
            })
    }
}

/// A cloneable, lock-free handle onto the latest [`SnapshotView`] of one
/// CDSS. Obtained from [`crate::Cdss::snapshot_reader`]; safe to hand to
/// any number of reader threads — [`SnapshotReader::latest`] never blocks
/// on the writer.
#[derive(Debug, Clone)]
pub struct SnapshotReader {
    cell: Arc<ArcCell<SnapshotView>>,
}

impl SnapshotReader {
    /// The most recently published view.
    pub fn latest(&self) -> Arc<SnapshotView> {
        self.cell.load()
    }
}

/// The publisher state a [`crate::Cdss`] owns: the copy-on-write snapshot
/// store plus the swap cell its readers load views from. The store sits
/// behind a `Mutex` so publication needs only `&self` — letting
/// [`crate::Cdss::snapshot`] refresh on demand from a shared borrow —
/// while reader loads stay lock-free through the cell.
#[derive(Debug)]
pub(crate) struct SnapshotState {
    store: Mutex<SnapshotStore>,
    cell: Arc<ArcCell<SnapshotView>>,
    /// The metadata stamped onto newly published views. Behind a mutex so
    /// [`crate::Cdss::add_mapping`] can swap in the extended mapping system;
    /// already-published views keep the meta they were published with (they
    /// describe the pre-change epochs).
    meta: Mutex<Arc<SnapshotMeta>>,
}

impl SnapshotState {
    /// Fresh state whose initial view is the empty epoch-0 snapshot; the
    /// owning `Cdss` publishes a real view immediately after construction.
    pub(crate) fn new(meta: SnapshotMeta) -> Self {
        let store = SnapshotStore::new();
        let meta = Arc::new(meta);
        let initial = SnapshotView {
            snap: store.latest(),
            meta: Arc::clone(&meta),
            published: 0,
            durable_epoch: 0,
            plan_cache_hits: 0,
            compactions_run: 0,
            graph: OnceLock::new(),
        };
        SnapshotState {
            store: Mutex::new(store),
            cell: Arc::new(ArcCell::new(Arc::new(initial))),
            meta: Mutex::new(meta),
        }
    }

    /// Replace the metadata used for future publishes (the mapping system
    /// changed). Takes effect at the next [`SnapshotState::publish`].
    pub(crate) fn replace_meta(&self, meta: SnapshotMeta) {
        *self.meta.lock().expect("snapshot meta lock") = Arc::new(meta);
    }

    /// Publish the database's current state with the given live counters
    /// and install the resulting view for readers.
    pub(crate) fn publish(
        &self,
        db: &Database,
        durable_epoch: u64,
        plan_cache_hits: u64,
        compactions_run: u64,
    ) {
        let mut store = self.store.lock().expect("snapshot store lock");
        let snap = store.publish(db);
        let meta = Arc::clone(&self.meta.lock().expect("snapshot meta lock"));
        let view = SnapshotView {
            snap,
            meta,
            published: store.published(),
            durable_epoch,
            plan_cache_hits,
            compactions_run,
            graph: OnceLock::new(),
        };
        self.cell.store(Arc::new(view));
    }

    /// Number of content-changing publishes so far.
    pub(crate) fn published(&self) -> u64 {
        self.store.lock().expect("snapshot store lock").published()
    }

    /// The latest installed view.
    pub(crate) fn latest(&self) -> Arc<SnapshotView> {
        self.cell.load()
    }

    /// A cloneable reader handle.
    pub(crate) fn reader(&self) -> SnapshotReader {
        SnapshotReader {
            cell: Arc::clone(&self.cell),
        }
    }
}

// Views and readers cross server threads by design; keep that checked at
// compile time alongside the `Cdss` assertion.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SnapshotView>();
    assert_send_sync::<SnapshotReader>()
};
