//! Error type for CDSS operations.

use std::fmt;

use orchestra_datalog::DatalogError;
use orchestra_mappings::MappingError;
use orchestra_storage::StorageError;

/// Errors raised by the CDSS layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CdssError {
    /// A peer with this identifier already exists.
    DuplicatePeer(String),
    /// No peer with this identifier exists.
    UnknownPeer(String),
    /// Two peers declare a logical relation with the same name (the paper
    /// assumes disjoint peer schemas, §2).
    DuplicateRelation {
        /// The relation declared twice.
        relation: String,
        /// The peer that already owns it.
        owner: String,
    },
    /// The relation is not part of the given peer's schema.
    NotPeerRelation {
        /// The peer.
        peer: String,
        /// The relation.
        relation: String,
    },
    /// A tuple's arity does not match the logical relation's schema.
    ArityMismatch {
        /// The relation.
        relation: String,
        /// Expected arity.
        expected: usize,
        /// Actual arity.
        actual: usize,
    },
    /// A trust policy refers to a mapping that does not exist.
    UnknownMapping(String),
    /// The mapping program was rejected by static analysis (termination,
    /// safety, stratification or schema diagnostics; see `orchestra-analyze`).
    Analysis(orchestra_analyze::AnalysisError),
    /// Error from the mapping layer.
    Mapping(MappingError),
    /// Error from the datalog layer.
    Datalog(DatalogError),
    /// Error from the storage layer.
    Storage(StorageError),
    /// Error from the persistence layer (codec, WAL, snapshot I/O).
    Persist(orchestra_persist::PersistError),
    /// Misuse of the durability API (not persistent, state already exists,
    /// no snapshot to recover…).
    Persistence(String),
}

impl fmt::Display for CdssError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdssError::DuplicatePeer(p) => write!(f, "peer `{p}` already exists"),
            CdssError::UnknownPeer(p) => write!(f, "unknown peer `{p}`"),
            CdssError::DuplicateRelation { relation, owner } => {
                write!(f, "relation `{relation}` is already declared by peer `{owner}` (peer schemas must be disjoint)")
            }
            CdssError::NotPeerRelation { peer, relation } => {
                write!(f, "relation `{relation}` does not belong to peer `{peer}`")
            }
            CdssError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "relation `{relation}` has arity {expected} but received a tuple of arity {actual}"
            ),
            CdssError::UnknownMapping(m) => write!(f, "unknown mapping `{m}` in trust policy"),
            CdssError::Analysis(e) => write!(f, "{e}"),
            CdssError::Mapping(e) => write!(f, "mapping error: {e}"),
            CdssError::Datalog(e) => write!(f, "datalog error: {e}"),
            CdssError::Storage(e) => write!(f, "storage error: {e}"),
            CdssError::Persist(e) => write!(f, "persistence error: {e}"),
            CdssError::Persistence(msg) => write!(f, "persistence misuse: {msg}"),
        }
    }
}

impl std::error::Error for CdssError {}

impl From<MappingError> for CdssError {
    fn from(e: MappingError) -> Self {
        CdssError::Mapping(e)
    }
}

impl From<orchestra_analyze::AnalysisError> for CdssError {
    fn from(e: orchestra_analyze::AnalysisError) -> Self {
        CdssError::Analysis(e)
    }
}

impl From<DatalogError> for CdssError {
    fn from(e: DatalogError) -> Self {
        CdssError::Datalog(e)
    }
}

impl From<StorageError> for CdssError {
    fn from(e: StorageError) -> Self {
        CdssError::Storage(e)
    }
}

impl From<orchestra_persist::PersistError> for CdssError {
    fn from(e: orchestra_persist::PersistError) -> Self {
        CdssError::Persist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CdssError = StorageError::UnknownRelation("B".into()).into();
        assert!(matches!(e, CdssError::Storage(_)));
        let e: CdssError = DatalogError::MissingRelation("B".into()).into();
        assert!(matches!(e, CdssError::Datalog(_)));
        let e: CdssError = MappingError::UnknownRelation("B".into()).into();
        assert!(matches!(e, CdssError::Mapping(_)));
        assert!(CdssError::UnknownPeer("PGUS".into())
            .to_string()
            .contains("PGUS"));
        assert!(CdssError::DuplicateRelation {
            relation: "B".into(),
            owner: "PBioSQL".into()
        }
        .to_string()
        .contains("disjoint"));
    }
}
